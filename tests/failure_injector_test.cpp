// sim::FailureInjector: script serialization, replay/elision semantics, the
// stabilize() contract, asymmetric links, crash-inside-delivery, and the
// deliberate-bug test hook that vsgc_stress's CI pipeline check rides on.
#include "sim/failure_injector.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "app/world.hpp"
#include "obs/json.hpp"
#include "util/assert.hpp"

namespace vsgc {
namespace {

using sim::FailureInjector;
using sim::FaultOp;
using sim::FaultScript;

// -- FaultScript JSON round-trip ---------------------------------------------

FaultScript SampleScript() {
  FaultScript script;
  script.seed = 42;
  FaultOp crash;
  crash.at = 100 * sim::kMillisecond;
  crash.kind = FaultOp::Kind::kCrash;
  crash.a = 2;
  script.ops.push_back(crash);

  FaultOp link;
  link.at = 200 * sim::kMillisecond;
  link.kind = FaultOp::Kind::kLinkDown;
  link.a = 0;
  link.b = sim::encode_server(1);
  link.oneway = true;
  script.ops.push_back(link);

  FaultOp drop;
  drop.at = 300 * sim::kMillisecond;
  drop.kind = FaultOp::Kind::kDrop;
  drop.p = 0.4;
  script.ops.push_back(drop);

  FaultOp latency;
  latency.at = 350 * sim::kMillisecond;
  latency.kind = FaultOp::Kind::kLatency;
  latency.t0 = 25 * sim::kMillisecond;
  latency.t1 = 5 * sim::kMillisecond;
  script.ops.push_back(latency);

  FaultOp part;
  part.at = 400 * sim::kMillisecond;
  part.kind = FaultOp::Kind::kPartition;
  part.groups = {{0, 1, sim::encode_server(0)}, {2, 3, sim::encode_server(1)}};
  script.ops.push_back(part);

  FaultOp traffic;
  traffic.at = 500 * sim::kMillisecond;
  traffic.kind = FaultOp::Kind::kTraffic;
  traffic.a = 1;
  traffic.payload = "hello \x01 world";  // non-ASCII byte must round-trip
  script.ops.push_back(traffic);
  return script;
}

TEST(FaultScript, JsonRoundTripPreservesEveryField) {
  const FaultScript script = SampleScript();
  const std::string text = script.to_json().dump();

  std::string error;
  const obs::JsonValue parsed = obs::JsonValue::parse(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  FaultScript back;
  ASSERT_TRUE(FaultScript::from_json(parsed, &back));

  ASSERT_EQ(back.seed, script.seed);
  ASSERT_EQ(back.ops.size(), script.ops.size());
  for (std::size_t i = 0; i < script.ops.size(); ++i) {
    const FaultOp& a = script.ops[i];
    const FaultOp& b = back.ops[i];
    EXPECT_EQ(a.at, b.at) << "op " << i;
    EXPECT_EQ(a.kind, b.kind) << "op " << i;
    EXPECT_EQ(a.a, b.a) << "op " << i;
    EXPECT_EQ(a.b, b.b) << "op " << i;
    EXPECT_EQ(a.oneway, b.oneway) << "op " << i;
    EXPECT_EQ(a.p, b.p) << "op " << i;
    EXPECT_EQ(a.t0, b.t0) << "op " << i;
    EXPECT_EQ(a.t1, b.t1) << "op " << i;
    EXPECT_EQ(a.groups, b.groups) << "op " << i;
    EXPECT_EQ(a.payload, b.payload) << "op " << i;
  }
  // Serialization itself is byte-deterministic.
  EXPECT_EQ(text, back.to_json().dump());
}

// -- Replay and elision -------------------------------------------------------

app::WorldConfig SmallWorld(int clients = 4, int servers = 2) {
  app::WorldConfig cfg;
  cfg.num_clients = clients;
  cfg.num_servers = servers;
  cfg.seed = 99;
  return cfg;
}

FaultOp At(sim::Time at, FaultOp::Kind kind, int a = -1) {
  FaultOp op;
  op.at = at;
  op.kind = kind;
  op.a = a;
  return op;
}

TEST(FailureInjector, ReplayAppliesOpsAndElisionSkipsThem) {
  FaultScript script;
  script.ops.push_back(At(1 * sim::kSecond, FaultOp::Kind::kCrash, 1));
  script.ops.push_back(At(2 * sim::kSecond, FaultOp::Kind::kCrash, 2));

  {
    app::World w(SmallWorld());
    w.start();
    ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
    FailureInjector injector(w.fault_target(), {}, 1);
    injector.replay(script);
    EXPECT_TRUE(w.process(1).crashed());
    EXPECT_TRUE(w.process(2).crashed());
    // Replay records what it applied, at the times it applied it.
    ASSERT_EQ(injector.script().ops.size(), 2u);
    EXPECT_EQ(injector.script().ops[0].at, 1 * sim::kSecond);
  }
  {
    app::World w(SmallWorld());
    w.start();
    ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
    FailureInjector injector(w.fault_target(), {}, 1);
    injector.replay(script, /*elide=*/{0});
    EXPECT_FALSE(w.process(1).crashed()) << "elided op must not apply";
    EXPECT_TRUE(w.process(2).crashed());
    // Time still advances past every op, elided or not.
    EXPECT_GE(w.sim().now(), 2 * sim::kSecond);
  }
}

TEST(FailureInjector, ArbitrarySubsetsReplayWithoutFaulting) {
  // Unpaired recover/rejoin/heal ops must be harmless no-ops: the minimizer
  // probes arbitrary subsets and relies on every subset being a valid run.
  FaultScript script;
  script.ops.push_back(At(1 * sim::kSecond, FaultOp::Kind::kRecover, 0));
  script.ops.push_back(At(2 * sim::kSecond, FaultOp::Kind::kRejoin, 1));
  script.ops.push_back(At(3 * sim::kSecond, FaultOp::Kind::kHeal));
  script.ops.push_back(At(4 * sim::kSecond, FaultOp::Kind::kServerUp, 0));
  script.ops.push_back(At(5 * sim::kSecond, FaultOp::Kind::kCrash, 1));
  script.ops.push_back(At(6 * sim::kSecond, FaultOp::Kind::kCrash, 1));  // dup

  app::World w(SmallWorld());
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  injector.stabilize();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond));
}

// -- stabilize() --------------------------------------------------------------

TEST(FailureInjector, StabilizeUndoesCrashesPartitionsAndServerOutages) {
  app::World w(SmallWorld(4, 2));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FaultScript script;
  script.ops.push_back(At(1 * sim::kSecond, FaultOp::Kind::kCrash, 0));
  script.ops.push_back(At(1 * sim::kSecond, FaultOp::Kind::kLeave, 1));
  script.ops.push_back(At(1 * sim::kSecond, FaultOp::Kind::kServerDown, 1));
  FaultOp part;
  part.at = 2 * sim::kSecond;
  part.kind = FaultOp::Kind::kPartition;
  part.groups = {{0, 1, sim::encode_server(0)}, {2, 3, sim::encode_server(1)}};
  script.ops.push_back(part);
  FaultOp drop;
  drop.at = 2 * sim::kSecond;
  drop.kind = FaultOp::Kind::kDrop;
  drop.p = 0.9;
  script.ops.push_back(drop);

  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  EXPECT_TRUE(w.process(0).crashed());

  injector.stabilize();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond))
      << "every member must be back in one agreed view after stabilize()";
}

// -- Asymmetric links ---------------------------------------------------------

TEST(FailureInjector, OnewayLinkDownBlocksExactlyOneDirection) {
  app::World w(SmallWorld(2, 1));
  const net::NodeId n0 = net::node_of(ProcessId{1});
  const net::NodeId n1 = net::node_of(ProcessId{2});
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FaultOp down;
  down.at = w.sim().now();
  down.kind = FaultOp::Kind::kLinkDown;
  down.a = 0;
  down.b = 1;
  down.oneway = true;
  FaultScript script;
  script.ops.push_back(down);

  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  EXPECT_FALSE(w.network().can_send(n0, n1));
  EXPECT_TRUE(w.network().can_send(n1, n0)) << "reverse direction stays up";

  injector.stabilize();
  EXPECT_TRUE(w.network().can_send(n0, n1));
}

// -- Crash inside the delivery callback ---------------------------------------

TEST(FailureInjector, CrashInDeliveryCrashesTheReceiverMidCallback) {
  app::World w(SmallWorld(3, 1));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FaultScript script;
  FaultOp arm = At(w.sim().now(), FaultOp::Kind::kCrashInDelivery, 2);
  script.ops.push_back(arm);
  FaultOp traffic;
  traffic.at = w.sim().now();
  traffic.kind = FaultOp::Kind::kTraffic;
  traffic.a = 0;
  traffic.payload = "boom";
  script.ops.push_back(traffic);

  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  w.run_for(3 * sim::kSecond);
  EXPECT_TRUE(w.process(2).crashed())
      << "armed process must crash inside its delivery callback";
  EXPECT_FALSE(w.process(0).crashed());
  EXPECT_FALSE(w.process(1).crashed());

  injector.stabilize();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond));
}

// -- The deliberate-bug hook ---------------------------------------------------

TEST(FailureInjector, InjectedDuplicateDeliveryTripsTheCheckers) {
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  cfg.num_servers = 1;
  cfg.seed = 5;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  // Real deliveries must exist before the forged duplicate.
  w.client(0).send("payload");
  w.run_for(3 * sim::kSecond);

  FailureInjector::Policy policy;
  policy.steps = 3;
  policy.bug_at_step = 1;
  FailureInjector injector(w.fault_target(), policy, 7);
  EXPECT_THROW(injector.run_churn(), InvariantViolation)
      << "the WV checker must catch the forged duplicate delivery";
}

// -- Fault events land on the trace -------------------------------------------

TEST(FailureInjector, PublishesFaultEventsOnTheTraceBus) {
  app::World w(SmallWorld(3, 1));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FaultScript script;
  script.ops.push_back(At(w.sim().now(), FaultOp::Kind::kCrash, 1));
  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);

  bool saw_fault = false;
  for (const spec::Event& ev : w.trace().recorded()) {
    if (const auto* f = std::get_if<spec::FaultInjected>(&ev.body)) {
      EXPECT_EQ(f->kind, "crash");
      saw_fault = true;
    }
  }
  EXPECT_TRUE(saw_fault);
}

}  // namespace
}  // namespace vsgc
