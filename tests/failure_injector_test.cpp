// sim::FailureInjector: script serialization, replay/elision semantics, the
// stabilize() contract, asymmetric links, crash-inside-delivery, and the
// deliberate-bug test hook that vsgc_stress's CI pipeline check rides on.
#include "sim/failure_injector.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string_view>

#include "app/world.hpp"
#include "obs/json.hpp"
#include "util/assert.hpp"

namespace vsgc {
namespace {

using sim::FailureInjector;
using sim::FaultOp;
using sim::FaultScript;

// -- FaultScript JSON round-trip ---------------------------------------------

FaultScript SampleScript() {
  FaultScript script;
  script.seed = 42;
  FaultOp crash;
  crash.at = 100 * sim::kMillisecond;
  crash.kind = FaultOp::Kind::kCrash;
  crash.a = 2;
  script.ops.push_back(crash);

  FaultOp link;
  link.at = 200 * sim::kMillisecond;
  link.kind = FaultOp::Kind::kLinkDown;
  link.a = 0;
  link.b = sim::encode_server(1);
  link.oneway = true;
  script.ops.push_back(link);

  FaultOp drop;
  drop.at = 300 * sim::kMillisecond;
  drop.kind = FaultOp::Kind::kDrop;
  drop.p = 0.4;
  script.ops.push_back(drop);

  FaultOp latency;
  latency.at = 350 * sim::kMillisecond;
  latency.kind = FaultOp::Kind::kLatency;
  latency.t0 = 25 * sim::kMillisecond;
  latency.t1 = 5 * sim::kMillisecond;
  script.ops.push_back(latency);

  FaultOp part;
  part.at = 400 * sim::kMillisecond;
  part.kind = FaultOp::Kind::kPartition;
  part.groups = {{0, 1, sim::encode_server(0)}, {2, 3, sim::encode_server(1)}};
  script.ops.push_back(part);

  FaultOp traffic;
  traffic.at = 500 * sim::kMillisecond;
  traffic.kind = FaultOp::Kind::kTraffic;
  traffic.a = 1;
  traffic.payload = "hello \x01 world";  // non-ASCII byte must round-trip
  script.ops.push_back(traffic);

  FaultOp corrupt;
  corrupt.at = 600 * sim::kMillisecond;
  corrupt.kind = FaultOp::Kind::kCorruptSeq;
  corrupt.a = 0;
  corrupt.b = 1;
  corrupt.v = 4;
  script.ops.push_back(corrupt);

  FaultOp wedge;
  wedge.at = 700 * sim::kMillisecond;
  wedge.kind = FaultOp::Kind::kBugCorruptWedge;
  wedge.a = 1;
  wedge.v = std::uint64_t{1} << 40;  // above-32-bit value must round-trip
  script.ops.push_back(wedge);

  FaultOp wave;
  wave.at = 800 * sim::kMillisecond;
  wave.kind = FaultOp::Kind::kWave;
  wave.groups = {{0, 2, sim::encode_server(1)}};  // slice rides in groups[0]
  script.ops.push_back(wave);
  return script;
}

TEST(FaultScript, JsonRoundTripPreservesEveryField) {
  const FaultScript script = SampleScript();
  const std::string text = script.to_json().dump();

  std::string error;
  const obs::JsonValue parsed = obs::JsonValue::parse(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  FaultScript back;
  ASSERT_TRUE(FaultScript::from_json(parsed, &back));

  ASSERT_EQ(back.seed, script.seed);
  ASSERT_EQ(back.ops.size(), script.ops.size());
  for (std::size_t i = 0; i < script.ops.size(); ++i) {
    const FaultOp& a = script.ops[i];
    const FaultOp& b = back.ops[i];
    EXPECT_EQ(a.at, b.at) << "op " << i;
    EXPECT_EQ(a.kind, b.kind) << "op " << i;
    EXPECT_EQ(a.a, b.a) << "op " << i;
    EXPECT_EQ(a.b, b.b) << "op " << i;
    EXPECT_EQ(a.oneway, b.oneway) << "op " << i;
    EXPECT_EQ(a.p, b.p) << "op " << i;
    EXPECT_EQ(a.t0, b.t0) << "op " << i;
    EXPECT_EQ(a.t1, b.t1) << "op " << i;
    EXPECT_EQ(a.groups, b.groups) << "op " << i;
    EXPECT_EQ(a.payload, b.payload) << "op " << i;
    EXPECT_EQ(a.v, b.v) << "op " << i;
  }
  // Serialization itself is byte-deterministic.
  EXPECT_EQ(text, back.to_json().dump());
}

// -- Replay and elision -------------------------------------------------------

app::WorldConfig SmallWorld(int clients = 4, int servers = 2) {
  app::WorldConfig cfg;
  cfg.num_clients = clients;
  cfg.num_servers = servers;
  cfg.seed = 99;
  return cfg;
}

FaultOp At(sim::Time at, FaultOp::Kind kind, int a = -1) {
  FaultOp op;
  op.at = at;
  op.kind = kind;
  op.a = a;
  return op;
}

TEST(FailureInjector, ReplayAppliesOpsAndElisionSkipsThem) {
  FaultScript script;
  script.ops.push_back(At(1 * sim::kSecond, FaultOp::Kind::kCrash, 1));
  script.ops.push_back(At(2 * sim::kSecond, FaultOp::Kind::kCrash, 2));

  {
    app::World w(SmallWorld());
    w.start();
    ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
    FailureInjector injector(w.fault_target(), {}, 1);
    injector.replay(script);
    EXPECT_TRUE(w.process(1).crashed());
    EXPECT_TRUE(w.process(2).crashed());
    // Replay records what it applied, at the times it applied it.
    ASSERT_EQ(injector.script().ops.size(), 2u);
    EXPECT_EQ(injector.script().ops[0].at, 1 * sim::kSecond);
  }
  {
    app::World w(SmallWorld());
    w.start();
    ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
    FailureInjector injector(w.fault_target(), {}, 1);
    injector.replay(script, /*elide=*/{0});
    EXPECT_FALSE(w.process(1).crashed()) << "elided op must not apply";
    EXPECT_TRUE(w.process(2).crashed());
    // Time still advances past every op, elided or not.
    EXPECT_GE(w.sim().now(), 2 * sim::kSecond);
  }
}

TEST(FailureInjector, ArbitrarySubsetsReplayWithoutFaulting) {
  // Unpaired recover/rejoin/heal ops must be harmless no-ops: the minimizer
  // probes arbitrary subsets and relies on every subset being a valid run.
  FaultScript script;
  script.ops.push_back(At(1 * sim::kSecond, FaultOp::Kind::kRecover, 0));
  script.ops.push_back(At(2 * sim::kSecond, FaultOp::Kind::kRejoin, 1));
  script.ops.push_back(At(3 * sim::kSecond, FaultOp::Kind::kHeal));
  script.ops.push_back(At(4 * sim::kSecond, FaultOp::Kind::kServerUp, 0));
  script.ops.push_back(At(5 * sim::kSecond, FaultOp::Kind::kCrash, 1));
  script.ops.push_back(At(6 * sim::kSecond, FaultOp::Kind::kCrash, 1));  // dup

  app::World w(SmallWorld());
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  injector.stabilize();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond));
}

// -- stabilize() --------------------------------------------------------------

TEST(FailureInjector, StabilizeUndoesCrashesPartitionsAndServerOutages) {
  app::World w(SmallWorld(4, 2));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FaultScript script;
  script.ops.push_back(At(1 * sim::kSecond, FaultOp::Kind::kCrash, 0));
  script.ops.push_back(At(1 * sim::kSecond, FaultOp::Kind::kLeave, 1));
  script.ops.push_back(At(1 * sim::kSecond, FaultOp::Kind::kServerDown, 1));
  FaultOp part;
  part.at = 2 * sim::kSecond;
  part.kind = FaultOp::Kind::kPartition;
  part.groups = {{0, 1, sim::encode_server(0)}, {2, 3, sim::encode_server(1)}};
  script.ops.push_back(part);
  FaultOp drop;
  drop.at = 2 * sim::kSecond;
  drop.kind = FaultOp::Kind::kDrop;
  drop.p = 0.9;
  script.ops.push_back(drop);

  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  EXPECT_TRUE(w.process(0).crashed());

  injector.stabilize();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond))
      << "every member must be back in one agreed view after stabilize()";
}

// -- Correlated failure waves -------------------------------------------------

TEST(FailureInjector, WaveIsolatesSliceInBulkAndLiftRestoresIt) {
  app::World w(SmallWorld(4, 1));
  const net::NodeId in_wave = net::node_of(ProcessId{1});
  const net::NodeId in_wave2 = net::node_of(ProcessId{2});
  const net::NodeId outside = net::node_of(ProcessId{3});
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FaultOp wave;
  wave.at = w.sim().now();
  wave.kind = FaultOp::Kind::kWave;
  wave.groups = {{0, 1}};  // processes 0 and 1
  FaultOp lift = wave;
  lift.at = wave.at + sim::kSecond;
  lift.kind = FaultOp::Kind::kWaveLift;
  FaultScript script;
  script.ops.push_back(wave);
  script.ops.push_back(lift);

  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  // Both ops already applied: the slice is back up.
  EXPECT_TRUE(w.network().can_send(in_wave, outside));
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond));
}

TEST(FailureInjector, StabilizeLiftsOutstandingWaves) {
  app::World w(SmallWorld(4, 1));
  const net::NodeId in_wave = net::node_of(ProcessId{1});
  const net::NodeId outside = net::node_of(ProcessId{3});
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FaultOp wave;
  wave.at = w.sim().now();
  wave.kind = FaultOp::Kind::kWave;
  wave.groups = {{0, 1}};
  FaultScript script;
  script.ops.push_back(wave);

  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  EXPECT_FALSE(w.network().can_send(in_wave, outside));
  EXPECT_FALSE(w.network().can_send(outside, in_wave))
      << "isolation is symmetric: no traffic in either direction";

  injector.stabilize();
  EXPECT_TRUE(w.network().can_send(in_wave, outside));
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond));
}

TEST(Network, IsolateBlocksPairsTouchingTheSliceOnly) {
  sim::Simulator sim;
  net::Network net(sim, Rng(1), {});
  const net::NodeId a{1}, b{2}, c{3}, d{4};
  net.isolate({a, b});
  EXPECT_FALSE(net.can_send(a, c));
  EXPECT_FALSE(net.can_send(c, a));
  EXPECT_FALSE(net.can_send(a, b)) << "two isolated nodes cannot talk either";
  EXPECT_TRUE(net.can_send(c, d)) << "pairs outside the slice are untouched";
  net.deisolate({a});
  EXPECT_TRUE(net.can_send(a, c));
  EXPECT_FALSE(net.can_send(b, c));
  net.heal();
  EXPECT_TRUE(net.can_send(b, c)) << "heal clears isolation";
}

// -- Asymmetric links ---------------------------------------------------------

TEST(FailureInjector, OnewayLinkDownBlocksExactlyOneDirection) {
  app::World w(SmallWorld(2, 1));
  const net::NodeId n0 = net::node_of(ProcessId{1});
  const net::NodeId n1 = net::node_of(ProcessId{2});
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FaultOp down;
  down.at = w.sim().now();
  down.kind = FaultOp::Kind::kLinkDown;
  down.a = 0;
  down.b = 1;
  down.oneway = true;
  FaultScript script;
  script.ops.push_back(down);

  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  EXPECT_FALSE(w.network().can_send(n0, n1));
  EXPECT_TRUE(w.network().can_send(n1, n0)) << "reverse direction stays up";

  injector.stabilize();
  EXPECT_TRUE(w.network().can_send(n0, n1));
}

// -- Crash inside the delivery callback ---------------------------------------

TEST(FailureInjector, CrashInDeliveryCrashesTheReceiverMidCallback) {
  app::World w(SmallWorld(3, 1));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FaultScript script;
  FaultOp arm = At(w.sim().now(), FaultOp::Kind::kCrashInDelivery, 2);
  script.ops.push_back(arm);
  FaultOp traffic;
  traffic.at = w.sim().now();
  traffic.kind = FaultOp::Kind::kTraffic;
  traffic.a = 0;
  traffic.payload = "boom";
  script.ops.push_back(traffic);

  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  w.run_for(3 * sim::kSecond);
  EXPECT_TRUE(w.process(2).crashed())
      << "armed process must crash inside its delivery callback";
  EXPECT_FALSE(w.process(0).crashed());
  EXPECT_FALSE(w.process(1).crashed());

  injector.stabilize();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond));
}

// -- The deliberate-bug hook ---------------------------------------------------

TEST(FailureInjector, InjectedDuplicateDeliveryTripsTheCheckers) {
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  cfg.num_servers = 1;
  cfg.seed = 5;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  // Real deliveries must exist before the forged duplicate.
  w.client(0).send("payload");
  w.run_for(3 * sim::kSecond);

  FailureInjector::Policy policy;
  policy.steps = 3;
  policy.bug_at_step = 1;
  FailureInjector injector(w.fault_target(), policy, 7);
  EXPECT_THROW(injector.run_churn(), InvariantViolation)
      << "the WV checker must catch the forged duplicate delivery";
}

// -- State-corruption family (DESIGN.md §12) ----------------------------------

app::WorldConfig EventualWorld(int clients = 4, int servers = 2) {
  app::WorldConfig cfg = SmallWorld(clients, servers);
  cfg.eventual_checkers = true;  // corruption fallout is tolerated in-window
  return cfg;
}

FaultOp CorruptAt(sim::Time at, FaultOp::Kind kind, int a, int b,
                  std::uint64_t v) {
  FaultOp op = At(at, kind, a);
  op.b = b;
  op.v = v;
  return op;
}

TEST(FailureInjector, RecoverableCorruptionHealsAndReconverges) {
  app::World w(EventualWorld(3, 1));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  // Seed the p0->p1 / p1->p0 streams with real traffic so the corruption ops
  // hit live transport state.
  w.client(0).send("warm0");
  w.client(1).send("warm1");
  w.run_for(2 * sim::kSecond);

  const sim::Time t0 = w.sim().now();
  FaultScript script;
  script.ops.push_back(
      CorruptAt(t0, FaultOp::Kind::kCorruptSeq, 0, 1, 4));
  script.ops.push_back(
      CorruptAt(t0, FaultOp::Kind::kCorruptAck, 1, 0, 3));
  script.ops.push_back(
      CorruptAt(t0, FaultOp::Kind::kCorruptReliable, 0, 1, 0));
  script.ops.push_back(CorruptAt(t0, FaultOp::Kind::kCorruptView, 1, -1,
                                 std::uint64_t{1} << 40));
  script.ops.push_back(
      CorruptAt(t0, FaultOp::Kind::kCorruptBackoff, 0, 1, 0));
  FaultOp traffic;
  traffic.at = t0;
  traffic.kind = FaultOp::Kind::kTraffic;
  traffic.a = 0;
  traffic.payload = "detect";
  script.ops.push_back(traffic);

  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);
  injector.stabilize();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond))
      << "every recoverable corruption must self-stabilize";
  w.run_for(2 * sim::kSecond);
  w.finalize_checkers();  // window-aware end-of-run checks stay green

  // At least one detection path fired: a transport incarnation reset or a
  // membership client re-sync.
  std::uint64_t repairs = 0;
  for (int i = 0; i < 3; ++i) {
    repairs += w.process(i).transport().stats().corruption_resets;
    repairs += w.process(i).membership().resyncs();
  }
  EXPECT_GT(repairs, 0u);
}

TEST(FailureInjector, CorruptionSubsetsReplayWithoutFaulting) {
  // The greedy minimizer probes arbitrary subsets of a corruption script;
  // every subset must be a valid run that still reconverges.
  app::World w(EventualWorld(3, 1));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  w.client(0).send("warm");
  w.run_for(2 * sim::kSecond);

  const sim::Time t0 = w.sim().now();
  FaultScript script;
  script.ops.push_back(
      CorruptAt(t0, FaultOp::Kind::kCorruptSeq, 0, 1, 2));
  script.ops.push_back(CorruptAt(t0 + sim::kSecond, FaultOp::Kind::kCorruptView,
                                 1, -1, std::uint64_t{1} << 40));
  script.ops.push_back(CorruptAt(t0 + 2 * sim::kSecond,
                                 FaultOp::Kind::kCorruptAck, 0, 1, 5));
  // Corruption aimed at a crashed process or a dead stream must no-op.
  script.ops.push_back(CorruptAt(t0 + 2 * sim::kSecond,
                                 FaultOp::Kind::kCorruptSeq, 2, 0, 9));

  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script, /*elide=*/{1, 3});
  injector.stabilize();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond));
  w.finalize_checkers();
}

TEST(FailureInjector, CorruptionChurnRecordsCorruptOpsAndRecovers) {
  app::World w(EventualWorld(4, 2));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FailureInjector::Policy policy;
  policy.steps = 30;
  policy.w_corrupt = 12;
  FailureInjector injector(w.fault_target(), policy, 9);
  injector.run_churn();
  bool saw_corrupt = false;
  for (const FaultOp& op : injector.script().ops) {
    if (std::string_view(op.name()).starts_with("corrupt_")) {
      saw_corrupt = true;
    }
  }
  EXPECT_TRUE(saw_corrupt) << "w_corrupt must put corruption in the mix";

  injector.stabilize();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond));
  w.run_for(2 * sim::kSecond);
  w.finalize_checkers();
}

TEST(FailureInjector, CorruptionWedgeBugDefeatsReconvergence) {
  // bug_is_corruption plants kBugCorruptWedge: an unrecoverable view-epoch
  // wedge the stabilize-and-reconverge epilogue must flag even under the
  // eventual-safety bundle — the corruption twin of the dup-delivery hook.
  app::World w(EventualWorld(3, 1));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  // Traffic-only churn: a crash + recover pair would reset the wedged
  // endpoint's state wholesale and mask the planted bug.
  FailureInjector::Policy policy;
  policy.steps = 3;
  policy.w_crash = 0;
  policy.w_recover = 0;
  policy.w_leave = 0;
  policy.w_rejoin = 0;
  policy.w_partition = 0;
  policy.w_heal = 0;
  policy.w_link = 0;
  policy.w_drop_spike = 0;
  policy.w_delay_burst = 0;
  policy.w_server_outage = 0;
  policy.w_crash_in_delivery = 0;
  policy.w_partition_in_view_change = 0;
  policy.bug_at_step = 1;
  policy.bug_is_corruption = true;
  FailureInjector injector(w.fault_target(), policy, 7);
  injector.run_churn();
  injector.stabilize();
  EXPECT_FALSE(w.run_until_converged(w.all_members(), 60 * sim::kSecond))
      << "the wedged endpoint must never re-enter an agreed view";
}

// -- Fault events land on the trace -------------------------------------------

TEST(FailureInjector, PublishesFaultEventsOnTheTraceBus) {
  app::World w(SmallWorld(3, 1));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  FaultScript script;
  script.ops.push_back(At(w.sim().now(), FaultOp::Kind::kCrash, 1));
  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);

  bool saw_fault = false;
  for (const spec::Event& ev : w.trace().recorded()) {
    if (const auto* f = std::get_if<spec::FaultInjected>(&ev.body)) {
      EXPECT_EQ(f->kind, "crash");
      saw_fault = true;
    }
  }
  EXPECT_TRUE(saw_fault);
}

TEST(FailureInjector, PublishesCorruptionFaultEventsOnTheTraceBus) {
  app::World w(EventualWorld(3, 1));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  w.client(0).send("warm");
  w.run_for(2 * sim::kSecond);

  FaultScript script;
  script.ops.push_back(
      CorruptAt(w.sim().now(), FaultOp::Kind::kCorruptSeq, 0, 1, 2));
  FailureInjector injector(w.fault_target(), {}, 1);
  injector.replay(script);

  bool saw_corrupt = false;
  for (const spec::Event& ev : w.trace().recorded()) {
    if (const auto* f = std::get_if<spec::FaultInjected>(&ev.body)) {
      if (f->kind == "corrupt_seq") saw_corrupt = true;
    }
  }
  EXPECT_TRUE(saw_corrupt)
      << "corruption ops must land on the trace for replay/minimization";
}

}  // namespace
}  // namespace vsgc
