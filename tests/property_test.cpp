// Randomized property sweeps: seeded churn (crashes, recoveries, leaves and
// rejoins, multi-way partitions, healing, link flaps, drop spikes, delay
// bursts, server outages, crash-inside-delivery, concurrent traffic) followed
// by stabilization. The churn schedule comes from sim::FailureInjector, the
// same engine tools/vsgc_stress sweeps at scale — each seed is a distinct
// asynchronous schedule and a distinct fault script. Every execution runs
// with the full checker suite attached (WV/VS/TRANS_SET/SELF/MBRSHP/CLIENT
// safety) and is checked for the conditional liveness Property 4.2 at the
// end.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "app/world.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/failure_injector.hpp"
#include "spec/liveness_checker.hpp"

namespace vsgc {
namespace {

struct ChurnParams {
  std::uint64_t seed;
  int clients;
  int servers;
  gcs::ForwardingKind forwarding;
  double drop_probability;
  bool two_tier = false;
};

std::string PrintParams(
    const ::testing::TestParamInfo<ChurnParams>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_c" + std::to_string(p.clients) +
         "_s" + std::to_string(p.servers) +
         (p.forwarding == gcs::ForwardingKind::kSimple ? "_simple"
                                                       : "_mincopies") +
         (p.drop_probability > 0 ? "_lossy" : "_clean") +
         (p.two_tier ? "_twotier" : "");
}

app::WorldConfig MakeConfig(const ChurnParams& param) {
  app::WorldConfig cfg;
  cfg.num_clients = param.clients;
  cfg.num_servers = param.servers;
  cfg.seed = param.seed;
  cfg.forwarding = param.forwarding;
  cfg.net.drop_probability = param.drop_probability;
  if (param.two_tier) {
    cfg.sync_routing.mode = gcs::SyncRouting::Mode::kTwoTier;
    // Two leader groups: first half led by p1, second half by the middle.
    const int half = (param.clients + 1) / 2;
    for (int i = 0; i < param.clients; ++i) {
      cfg.sync_routing.leader_of[ProcessId{static_cast<std::uint32_t>(i + 1)}] =
          ProcessId{static_cast<std::uint32_t>(i < half ? 1 : half + 1)};
    }
  }
  return cfg;
}

sim::FailureInjector::Policy MakePolicy(const ChurnParams& param) {
  sim::FailureInjector::Policy policy;
  policy.base_drop = param.drop_probability;
  return policy;
}

class ChurnProperty : public ::testing::TestWithParam<ChurnParams> {};

TEST_P(ChurnProperty, SafetyAlwaysLivenessAfterStabilization) {
  const ChurnParams param = GetParam();
  app::World w(MakeConfig(param));
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond))
      << "initial convergence";

  // Churn phase: the injector draws faults and traffic from its policy.
  sim::FailureInjector injector(w.fault_target(), MakePolicy(param),
                                param.seed);
  injector.run_churn();

  // Stabilization: heal everything, recover everyone, let traffic drain.
  injector.stabilize();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond))
      << "group must reconverge after stabilization";

  // Post-stabilization traffic must reach everyone.
  std::vector<int> rx(static_cast<std::size_t>(param.clients), 0);
  for (int i = 0; i < param.clients; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.client(0).send("final-probe");
  w.run_for(3 * sim::kSecond);
  for (int i = 0; i < param.clients; ++i) {
    EXPECT_EQ(rx[static_cast<std::size_t>(i)], 1) << "process " << i;
  }

  // Prophecy-style end-of-run checks + liveness over the recorded trace.
  w.checkers().finalize();
  EXPECT_TRUE(spec::LivenessChecker::check(w.trace().recorded()));
}

std::vector<ChurnParams> MakeSweep() {
  std::vector<ChurnParams> out;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    out.push_back({seed, 4, 1, gcs::ForwardingKind::kMinCopies, 0.0});
  }
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    out.push_back({seed, 5, 2, gcs::ForwardingKind::kMinCopies, 0.0});
  }
  for (std::uint64_t seed = 17; seed <= 20; ++seed) {
    out.push_back({seed, 4, 1, gcs::ForwardingKind::kSimple, 0.0});
  }
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    out.push_back({seed, 3, 1, gcs::ForwardingKind::kMinCopies, 0.05});
  }
  for (std::uint64_t seed = 25; seed <= 30; ++seed) {
    out.push_back(
        {seed, 6, 2, gcs::ForwardingKind::kMinCopies, 0.0, /*two_tier=*/true});
  }
  for (std::uint64_t seed = 31; seed <= 36; ++seed) {
    out.push_back({seed, 8, 3, gcs::ForwardingKind::kMinCopies, 0.0});
  }
  for (std::uint64_t seed = 37; seed <= 40; ++seed) {
    out.push_back({seed, 5, 2, gcs::ForwardingKind::kSimple, 0.05});
  }
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    out.push_back(
        {seed, 6, 2, gcs::ForwardingKind::kMinCopies, 0.05, /*two_tier=*/true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Churn, ChurnProperty,
                         ::testing::ValuesIn(MakeSweep()), PrintParams);

// -- Determinism of injector-driven executions --------------------------------

struct InjectedRun {
  std::string jsonl;          ///< full recorded trace, serialized
  sim::FaultScript script;    ///< the fault schedule that was applied
};

InjectedRun RunChurn(const ChurnParams& param,
                     const sim::FaultScript* replay = nullptr) {
  app::World w(MakeConfig(param));
  w.start();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  sim::FailureInjector injector(w.fault_target(), MakePolicy(param),
                                param.seed);
  if (replay != nullptr) injector.replay(*replay);
  else injector.run_churn();
  injector.stabilize();
  EXPECT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond));
  std::ostringstream os;
  obs::write_jsonl(w.trace().recorded(), os);
  return {os.str(), injector.script()};
}

// Two independent worlds driven by the same seed must produce byte-identical
// JSONL traces — faults, deliveries, views, everything.
TEST(ChurnDeterminism, SameSeedByteIdenticalTrace) {
  const ChurnParams param{7, 5, 2, gcs::ForwardingKind::kMinCopies, 0.02};
  const InjectedRun a = RunChurn(param);
  const InjectedRun b = RunChurn(param);
  ASSERT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);
}

// Replaying the fault script recorded by a generate run reproduces the exact
// execution: the repro bundles vsgc_stress emits are faithful by construction.
TEST(ChurnDeterminism, GenerateThenReplayByteIdenticalTrace) {
  const ChurnParams param{13, 4, 1, gcs::ForwardingKind::kMinCopies, 0.0};
  const InjectedRun generated = RunChurn(param);
  ASSERT_FALSE(generated.script.ops.empty());
  const InjectedRun replayed = RunChurn(param, &generated.script);
  EXPECT_EQ(generated.jsonl, replayed.jsonl);
}

}  // namespace
}  // namespace vsgc
