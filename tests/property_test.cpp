// Randomized property sweeps: seeded churn (crashes, recoveries, partitions,
// healing, concurrent traffic) followed by stabilization. Every execution
// runs with the full checker suite attached (WV/VS/TRANS_SET/SELF/MBRSHP/
// CLIENT safety) and is checked for the conditional liveness Property 4.2 at
// the end. Each seed is a distinct asynchronous schedule.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "app/world.hpp"
#include "spec/liveness_checker.hpp"
#include "util/rng.hpp"

namespace vsgc {
namespace {

struct ChurnParams {
  std::uint64_t seed;
  int clients;
  int servers;
  gcs::ForwardingKind forwarding;
  double drop_probability;
  bool two_tier = false;
};

std::string PrintParams(
    const ::testing::TestParamInfo<ChurnParams>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_c" + std::to_string(p.clients) +
         "_s" + std::to_string(p.servers) +
         (p.forwarding == gcs::ForwardingKind::kSimple ? "_simple"
                                                       : "_mincopies") +
         (p.drop_probability > 0 ? "_lossy" : "_clean") +
         (p.two_tier ? "_twotier" : "");
}

class ChurnProperty : public ::testing::TestWithParam<ChurnParams> {};

TEST_P(ChurnProperty, SafetyAlwaysLivenessAfterStabilization) {
  const ChurnParams param = GetParam();
  app::WorldConfig cfg;
  cfg.num_clients = param.clients;
  cfg.num_servers = param.servers;
  cfg.seed = param.seed;
  cfg.forwarding = param.forwarding;
  cfg.net.drop_probability = param.drop_probability;
  if (param.two_tier) {
    cfg.sync_routing.mode = gcs::SyncRouting::Mode::kTwoTier;
    // Two leader groups: first half led by p1, second half by the middle.
    const int half = (param.clients + 1) / 2;
    for (int i = 0; i < param.clients; ++i) {
      cfg.sync_routing.leader_of[ProcessId{static_cast<std::uint32_t>(i + 1)}] =
          ProcessId{static_cast<std::uint32_t>(i < half ? 1 : half + 1)};
    }
  }
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond))
      << "initial convergence";

  Rng rng(param.seed * 7919 + 13);
  std::vector<bool> crashed(static_cast<std::size_t>(param.clients), false);
  bool partitioned = false;

  // Churn phase: random faults interleaved with traffic.
  for (int step = 0; step < 25; ++step) {
    const int action = static_cast<int>(rng.next_below(10));
    const int target = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(param.clients)));
    if (action < 5) {
      // Traffic from a random live process.
      if (!crashed[static_cast<std::size_t>(target)]) {
        w.client(target).send("churn-" + std::to_string(step));
      }
    } else if (action < 7) {
      if (!crashed[static_cast<std::size_t>(target)]) {
        w.process(target).crash();
        crashed[static_cast<std::size_t>(target)] = true;
      }
    } else if (action < 9) {
      if (crashed[static_cast<std::size_t>(target)]) {
        w.process(target).recover();
        crashed[static_cast<std::size_t>(target)] = false;
      }
    } else if (!partitioned) {
      // Random partition: split clients and servers into two components.
      std::vector<std::set<net::NodeId>> comps(2);
      for (int i = 0; i < param.clients; ++i) {
        comps[rng.next_below(2)].insert(
            net::node_of(ProcessId{static_cast<std::uint32_t>(i + 1)}));
      }
      for (int s = 0; s < param.servers; ++s) {
        comps[rng.next_below(2)].insert(
            net::node_of(ServerId{static_cast<std::uint32_t>(s)}));
      }
      w.network().partition(comps);
      partitioned = true;
    } else {
      w.network().heal();
      partitioned = false;
    }
    w.run_for(static_cast<sim::Time>(rng.next_in(50, 600)) *
              sim::kMillisecond);
  }

  // Stabilization: heal everything, recover everyone, let traffic drain.
  w.network().heal();
  for (int i = 0; i < param.clients; ++i) {
    if (crashed[static_cast<std::size_t>(i)]) w.process(i).recover();
  }
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 60 * sim::kSecond))
      << "group must reconverge after stabilization";

  // Post-stabilization traffic must reach everyone.
  std::vector<int> rx(static_cast<std::size_t>(param.clients), 0);
  for (int i = 0; i < param.clients; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.client(0).send("final-probe");
  w.run_for(3 * sim::kSecond);
  for (int i = 0; i < param.clients; ++i) {
    EXPECT_EQ(rx[static_cast<std::size_t>(i)], 1) << "process " << i;
  }

  // Prophecy-style end-of-run checks + liveness over the recorded trace.
  w.checkers().finalize();
  EXPECT_TRUE(spec::LivenessChecker::check(w.trace().recorded()));
}

std::vector<ChurnParams> MakeSweep() {
  std::vector<ChurnParams> out;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    out.push_back({seed, 4, 1, gcs::ForwardingKind::kMinCopies, 0.0});
  }
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    out.push_back({seed, 5, 2, gcs::ForwardingKind::kMinCopies, 0.0});
  }
  for (std::uint64_t seed = 17; seed <= 20; ++seed) {
    out.push_back({seed, 4, 1, gcs::ForwardingKind::kSimple, 0.0});
  }
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    out.push_back({seed, 3, 1, gcs::ForwardingKind::kMinCopies, 0.05});
  }
  for (std::uint64_t seed = 25; seed <= 30; ++seed) {
    out.push_back(
        {seed, 6, 2, gcs::ForwardingKind::kMinCopies, 0.0, /*two_tier=*/true});
  }
  for (std::uint64_t seed = 31; seed <= 36; ++seed) {
    out.push_back({seed, 8, 3, gcs::ForwardingKind::kMinCopies, 0.0});
  }
  for (std::uint64_t seed = 37; seed <= 40; ++seed) {
    out.push_back({seed, 5, 2, gcs::ForwardingKind::kSimple, 0.05});
  }
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    out.push_back(
        {seed, 6, 2, gcs::ForwardingKind::kMinCopies, 0.05, /*two_tier=*/true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Churn, ChurnProperty,
                         ::testing::ValuesIn(MakeSweep()), PrintParams);

}  // namespace
}  // namespace vsgc
