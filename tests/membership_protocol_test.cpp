// Protocol-level tests for the membership servers' round agreement: identical
// views across servers, round catch-up, obsolete-view suppression, and the
// client-incarnation blip detection (see EXPERIMENTS.md "notable findings").
#include <gtest/gtest.h>

#include "app/world.hpp"
#include "spec/liveness_checker.hpp"

namespace vsgc {
namespace {

TEST(MembershipProtocol, ConcurrentServersFormIdenticalViews) {
  // The round protocol must make every server compute the IDENTICAL view —
  // including the identical startId map — even while rounds race during
  // warm-up. The GCS checkers would catch id collisions; here we check the
  // client-visible result directly.
  app::WorldConfig cfg;
  cfg.num_clients = 6;
  cfg.num_servers = 3;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  const View& reference = w.process(0).endpoint().current_view();
  for (int i = 1; i < 6; ++i) {
    EXPECT_EQ(w.process(i).endpoint().current_view(), reference)
        << "client " << i << " installed a different view object";
  }
  w.checkers().finalize();
}

TEST(MembershipProtocol, RoundsCatchUpAfterPartition) {
  // A server isolated through several rounds must catch up to its peers'
  // round numbers on merge (epochs keep increasing monotonically).
  app::WorldConfig cfg;
  cfg.num_clients = 4;
  cfg.num_servers = 2;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  w.network().partition(
      {{net::node_of(ServerId{0}), net::node_of(ProcessId{1}),
        net::node_of(ProcessId{3})},
       {net::node_of(ServerId{1}), net::node_of(ProcessId{2}),
        net::node_of(ProcessId{4})}});
  // Extra churn inside component A bumps s0's rounds well past s1's.
  w.run_for(3 * sim::kSecond);
  w.process(0).crash();
  w.run_for(3 * sim::kSecond);
  w.process(0).recover();
  w.run_for(3 * sim::kSecond);
  const auto epoch_a = w.server(0).last_epoch();
  const auto epoch_b = w.server(1).last_epoch();
  EXPECT_GT(epoch_a, epoch_b);

  w.network().heal();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 20 * sim::kSecond));
  EXPECT_GE(w.server(1).last_epoch(), epoch_a)
      << "the lagging server must catch up to the merged round";
  EXPECT_EQ(w.server(0).last_epoch(), w.server(1).last_epoch());
  w.checkers().finalize();
}

TEST(MembershipProtocol, FastCrashRecoveryBlipStillYieldsFreshView) {
  // A client that crashes and recovers FASTER than the failure detector's
  // timeout must still receive a fresh view (per-life heartbeat
  // incarnations); without that, Property 4.2 liveness fails.
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  cfg.server.fd.timeout = 500 * sim::kMillisecond;  // generous timeout
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  const ViewId before = w.process(1).endpoint().current_view().id;

  w.process(1).crash();
  w.run_for(100 * sim::kMillisecond);  // well inside the FD timeout
  w.process(1).recover();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 20 * sim::kSecond))
      << "blipped client must reconverge although the FD never noticed";
  EXPECT_LT(before, w.process(1).endpoint().current_view().id);

  // And the reconverged group is fully live.
  std::vector<int> rx(3, 0);
  for (int i = 0; i < 3; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.client(1).send("hello again");
  w.run_for(2 * sim::kSecond);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(rx[static_cast<std::size_t>(i)], 1);
  w.checkers().finalize();
  EXPECT_TRUE(spec::LivenessChecker::check(w.trace().recorded()));
}

TEST(MembershipProtocol, ObsoleteViewSuppressionCountsStayBounded) {
  // Suppression (a formed view failing the start_change validation) may
  // happen transiently, but the protocol must converge rather than livelock.
  app::WorldConfig cfg;
  cfg.num_clients = 8;
  cfg.num_servers = 2;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 15 * sim::kSecond));
  const auto r0 = w.server(0).stats().rounds_started;
  const auto r1 = w.server(1).stats().rounds_started;
  w.run_for(5 * sim::kSecond);
  EXPECT_EQ(w.server(0).stats().rounds_started, r0)
      << "no rounds may start while the membership is stable";
  EXPECT_EQ(w.server(1).stats().rounds_started, r1);
}

TEST(MembershipProtocol, GracefulLeaveSkipsFailureDetectorTimeout) {
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  cfg.server.fd.timeout = 2 * sim::kSecond;  // deliberately long
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  const sim::Time before = w.sim().now();
  w.process(2).leave();
  ASSERT_TRUE(w.run_until_converged({ProcessId{1}, ProcessId{2}},
                                    1 * sim::kSecond))
      << "a graceful leave must reconfigure well before the 2 s FD timeout";
  EXPECT_LT(w.sim().now() - before, sim::kSecond);
  w.checkers().finalize();
}

TEST(MembershipProtocol, LeaverCanRejoin) {
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  w.process(2).leave();
  ASSERT_TRUE(w.run_until_converged({ProcessId{1}, ProcessId{2}},
                                    10 * sim::kSecond));
  w.process(2).start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));

  std::vector<int> rx(3, 0);
  for (int i = 0; i < 3; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.client(2).send("back again");
  w.run_for(2 * sim::kSecond);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(rx[static_cast<std::size_t>(i)], 1);
  w.checkers().finalize();
}

TEST(MembershipProtocol, ForgedLeaveIgnored) {
  app::WorldConfig cfg;
  cfg.num_clients = 2;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  // p1 forges a Leave for p2: must be ignored (source mismatch).
  membership::wire::Leave forged{ProcessId{2}};
  w.process(0).transport().send_raw(net::node_of(ServerId{0}),
                                    std::any(forged),
                                    membership::wire::Leave::kWireSize);
  w.run_for(2 * sim::kSecond);
  EXPECT_TRUE(w.converged(w.all_members()))
      << "forged leave must not evict p2";
}

TEST(MembershipProtocol, ServerCrashExcludesItsClients) {
  app::WorldConfig cfg;
  cfg.num_clients = 4;
  cfg.num_servers = 2;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  // Kill server 1 (and its clients become unreachable for membership
  // purposes; their server never reports them again).
  w.network().set_node_up(net::node_of(ServerId{1}), false);
  // Clients 1 and 3 (indices 0, 2) are on server 0.
  ASSERT_TRUE(w.run_until_converged({ProcessId{1}, ProcessId{3}},
                                    20 * sim::kSecond))
      << "server-0 clients must reconfigure without server 1's clients";
  w.checkers().finalize();
}

}  // namespace
}  // namespace vsgc
