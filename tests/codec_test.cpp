// Codec round-trip tests for every wire message type, including a seeded
// randomized sweep — the wire format is part of the public contract.
#include <gtest/gtest.h>

#include "baseline/two_round_endpoint.hpp"
#include "gcs/messages.hpp"
#include "membership/wire.hpp"
#include "transport/frame.hpp"
#include "util/rng.hpp"

namespace vsgc {
namespace {

View random_view(Rng& rng) {
  View v;
  v.id = ViewId{rng.next_u64() % 1000, static_cast<std::uint32_t>(rng.next_below(8))};
  const int n = static_cast<int>(rng.next_in(1, 6));
  for (int i = 0; i < n; ++i) {
    const ProcessId p{static_cast<std::uint32_t>(rng.next_below(100))};
    v.members.insert(p);
    v.start_id[p] = StartChangeId{rng.next_u64() % 50};
  }
  return v;
}

std::string random_payload(Rng& rng) {
  std::string s(rng.next_below(64), '\0');
  for (char& c : s) c = static_cast<char>(rng.next_in(0, 255));
  return s;
}

template <typename T>
void round_trip(const T& value) {
  Encoder enc;
  value.encode(enc);
  Decoder dec(enc.bytes());
  const auto tag = dec.get_u8();
  EXPECT_NE(tag, 0u);
  const T back = T::decode(dec);
  EXPECT_EQ(value, back);
  EXPECT_TRUE(dec.done());
}

TEST(Codec, GcsViewMsg) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) round_trip(gcs::wire::ViewMsg{random_view(rng)});
}

TEST(Codec, GcsAppMsg) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    round_trip(gcs::wire::AppMsgWire{
        gcs::AppMsg{ProcessId{static_cast<std::uint32_t>(rng.next_below(100))},
                    rng.next_u64(), random_payload(rng)}});
  }
}

TEST(Codec, GcsFwdMsg) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    gcs::wire::FwdMsg m;
    m.orig = ProcessId{static_cast<std::uint32_t>(rng.next_below(100))};
    m.view = random_view(rng);
    m.index = rng.next_in(1, 1 << 20);
    m.msg = gcs::AppMsg{m.orig, rng.next_u64(), random_payload(rng)};
    round_trip(m);
  }
}

TEST(Codec, GcsSyncMsg) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    gcs::wire::SyncMsg m;
    m.cid = StartChangeId{rng.next_u64() % 1000};
    m.view = random_view(rng);
    for (ProcessId p : m.view.members) m.cut[p] = rng.next_in(0, 1 << 16);
    round_trip(m);
  }
}

TEST(Codec, MembershipStartChange) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    membership::wire::StartChange sc;
    sc.cid = StartChangeId{rng.next_u64() % 1000};
    const int n = static_cast<int>(rng.next_in(1, 8));
    for (int k = 0; k < n; ++k) {
      sc.set.insert(ProcessId{static_cast<std::uint32_t>(rng.next_below(100))});
    }
    round_trip(sc);
  }
}

TEST(Codec, MembershipViewDelivery) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    round_trip(membership::wire::ViewDelivery{random_view(rng)});
  }
}

TEST(Codec, MembershipViewDelta) {
  Rng rng(61);
  for (int i = 0; i < 50; ++i) {
    // A base view plus random churn: leaves, joins, a common cid bump, and
    // an occasional outlier — diff/apply must reconstruct `next` exactly,
    // and the wire form must round-trip.
    View base = random_view(rng);
    base.id = ViewId{1 + rng.next_u64() % 100, 0};
    View next;
    next.id = ViewId{base.id.epoch + 1 + rng.next_u64() % 10, 0};
    const std::uint64_t bump = rng.next_in(1, 4);
    for (ProcessId p : base.members) {
      if (rng.next_below(4) == 0) continue;  // leave
      next.members.insert(p);
      std::uint64_t cid = base.start_id.at(p).value + bump;
      if (rng.next_below(5) == 0) cid += 1 + rng.next_below(3);  // outlier
      next.start_id[p] = StartChangeId{cid};
    }
    for (int k = static_cast<int>(rng.next_below(3)); k > 0; --k) {  // joins
      const ProcessId p{static_cast<std::uint32_t>(200 + rng.next_below(50))};
      next.members.insert(p);
      next.start_id[p] = StartChangeId{rng.next_u64() % 50};
    }
    if (next.members.empty()) continue;

    const auto delta = membership::wire::ViewDelta::diff(base, next);
    round_trip(delta);
    const std::optional<View> applied = delta.apply(base);
    ASSERT_TRUE(applied.has_value());
    EXPECT_EQ(*applied, next);
  }
}

TEST(Codec, ViewDeltaForgedRejection) {
  Rng rng(62);
  View base = random_view(rng);
  base.id = ViewId{5, 0};
  View next = base;
  next.id = ViewId{6, 0};
  const auto delta = membership::wire::ViewDelta::diff(base, next);

  // apply() against the wrong base: rejected, never a garbage view.
  View other = base;
  other.id = ViewId{4, 0};
  EXPECT_FALSE(delta.apply(other).has_value());

  // A leave for a process that is not a member of the base.
  {
    auto forged = delta;
    forged.leaves.insert(ProcessId{9999});
    EXPECT_FALSE(forged.apply(base).has_value());
  }
  // A join for a process that already is a member.
  {
    auto forged = delta;
    forged.joins[*base.members.begin()] = StartChangeId{1};
    EXPECT_FALSE(forged.apply(base).has_value());
  }
  // A start-id exception for a process outside the view.
  {
    auto forged = delta;
    forged.exceptions[ProcessId{9999}] = StartChangeId{1};
    EXPECT_FALSE(forged.apply(base).has_value());
  }
  // A delta that removes everyone cannot produce an empty view.
  {
    auto forged = delta;
    forged.joins.clear();
    forged.leaves = base.members;
    EXPECT_FALSE(forged.apply(base).has_value());
  }

  // Wire-level rejection: non-advancing id, overlapping joins/leaves, and
  // every truncation fail cleanly with DecodeError.
  {
    auto forged = delta;
    forged.base = forged.id;  // base must be < id
    Encoder enc;
    forged.encode(enc);
    Decoder dec(enc.bytes());
    dec.get_u8();
    EXPECT_THROW(membership::wire::ViewDelta::decode(dec), DecodeError);
  }
  {
    auto forged = delta;
    const ProcessId p = *base.members.begin();
    forged.leaves.insert(p);
    forged.joins[p] = StartChangeId{1};
    Encoder enc;
    forged.encode(enc);
    Decoder dec(enc.bytes());
    dec.get_u8();
    EXPECT_THROW(membership::wire::ViewDelta::decode(dec), DecodeError);
  }
  {
    auto populated = delta;
    populated.leaves.insert(ProcessId{7});
    populated.joins[ProcessId{300}] = StartChangeId{3};
    populated.exceptions[*base.members.begin()] = StartChangeId{11};
    Encoder enc;
    populated.encode(enc);
    const auto& full = enc.bytes();
    for (std::size_t cut = 1; cut < full.size(); ++cut) {
      const std::vector<std::uint8_t> prefix(
          full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
      Decoder dec(prefix);
      dec.get_u8();
      EXPECT_THROW(membership::wire::ViewDelta::decode(dec), DecodeError)
          << "prefix of " << cut << " bytes decoded without error";
    }
  }
}

TEST(Codec, MembershipProposal) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    membership::wire::Proposal p;
    p.from = ServerId{static_cast<std::uint32_t>(rng.next_below(8))};
    p.round = rng.next_u64() % 10000;
    const int n = static_cast<int>(rng.next_in(0, 6));
    for (int k = 0; k < n; ++k) {
      const ProcessId q{static_cast<std::uint32_t>(rng.next_below(100))};
      p.local_alive.insert(q);
      p.cids[q] = StartChangeId{rng.next_u64() % 100};
    }
    const int m = static_cast<int>(rng.next_in(1, 4));
    for (int k = 0; k < m; ++k) {
      p.participants.insert(ServerId{static_cast<std::uint32_t>(rng.next_below(8))});
    }
    round_trip(p);
  }
}

TEST(Codec, MembershipHeartbeat) {
  round_trip(membership::wire::Heartbeat{true, 3});
  round_trip(membership::wire::Heartbeat{false, 42});
}

TEST(Codec, WireSizeMatchesEncodedSizeForViewCarriers) {
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const gcs::wire::ViewMsg vm{random_view(rng)};
    Encoder enc;
    vm.encode(enc);
    EXPECT_EQ(vm.wire_size(), enc.size());
  }
}

TEST(Codec, TagsAreDistinct) {
  std::set<std::uint8_t> tags = {
      static_cast<std::uint8_t>(gcs::wire::Tag::kViewMsg),
      static_cast<std::uint8_t>(gcs::wire::Tag::kAppMsg),
      static_cast<std::uint8_t>(gcs::wire::Tag::kFwdMsg),
      static_cast<std::uint8_t>(gcs::wire::Tag::kSyncMsg),
      static_cast<std::uint8_t>(membership::wire::Tag::kStartChange),
      static_cast<std::uint8_t>(membership::wire::Tag::kViewDelivery),
      static_cast<std::uint8_t>(membership::wire::Tag::kProposal),
      static_cast<std::uint8_t>(membership::wire::Tag::kHeartbeat),
      static_cast<std::uint8_t>(membership::wire::Tag::kViewDelta),
  };
  EXPECT_EQ(tags.size(), 9u);
}

TEST(Codec, EncoderReserveNeverChangesEncoding) {
  // reserve() is a pure capacity hint; the byte stream must be identical
  // with and without it, for any mix of scalar and bulk appends.
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    const View v = random_view(rng);
    const std::string s = random_payload(rng);
    Encoder plain;
    Encoder hinted;
    hinted.reserve(1 + 8 + 4 + 4 + 4 * v.members.size() + 4 + s.size());
    for (Encoder* e : {&plain, &hinted}) {
      e->put_u8(0x7e);
      e->put_view_id(v.id);
      e->put_process_set(v.members);
      e->put_string(s);
    }
    ASSERT_EQ(plain.bytes(), hinted.bytes()) << "round " << round;
    Decoder dec(hinted.bytes());
    EXPECT_EQ(dec.get_u8(), 0x7e);
    EXPECT_EQ(dec.get_view_id(), v.id);
    EXPECT_EQ(dec.get_process_set(), v.members);
    EXPECT_EQ(dec.get_string(), s);
    EXPECT_TRUE(dec.done());
  }
}

// --------------------------------------------------------------------------
// Transport frame codec (DESIGN.md §11): packed-frame round-trips and
// adversarial truncated / forged-count inputs. Decoding must fail cleanly
// via Decoder::need() (DecodeError), never read out of bounds, and never let
// a forged entry count drive an unbounded allocation.
// --------------------------------------------------------------------------

transport::wire::EncodedFrame random_frame(Rng& rng, std::size_t entries) {
  transport::wire::EncodedFrame f;
  f.header.flags = static_cast<std::uint8_t>(rng.next_below(4));
  f.header.incarnation = rng.next_u64();
  f.header.first_seq = 1 + rng.next_u64() % 1000;
  f.header.base_seq = f.header.first_seq + rng.next_u64() % 100;
  f.header.ack_incarnation = rng.next_u64();
  f.header.ack_seq = rng.next_u64() % 5000;
  for (std::size_t i = 0; i < entries; ++i) {
    std::vector<std::uint8_t> p(rng.next_below(48));
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_below(256));
    f.payloads.push_back(std::move(p));
  }
  return f;
}

TEST(FrameCodec, PackedFrameRoundTrip) {
  Rng rng(11);
  for (std::size_t entries : {0u, 1u, 2u, 7u, 64u}) {
    const auto f = random_frame(rng, entries);
    Encoder enc;
    f.encode(enc);
    Decoder dec(enc.bytes());
    const auto back = transport::wire::EncodedFrame::decode(dec);
    EXPECT_EQ(back.payloads, f.payloads);
    EXPECT_EQ(back.header.incarnation, f.header.incarnation);
    EXPECT_EQ(back.header.base_seq, f.header.base_seq);
    EXPECT_EQ(back.header.ack_seq, f.header.ack_seq);
    EXPECT_EQ(back.header.count, entries);
    EXPECT_TRUE(dec.done());
  }
}

TEST(FrameCodec, HeaderOnlyAckFrameRoundTrip) {
  transport::wire::EncodedFrame ack;
  ack.header.flags = transport::wire::kFlagHasAck;
  ack.header.ack_incarnation = 7;
  ack.header.ack_seq = 41;
  Encoder enc;
  ack.encode(enc);
  Decoder dec(enc.bytes());
  const auto back = transport::wire::EncodedFrame::decode(dec);
  EXPECT_EQ(back, ack);
  EXPECT_TRUE(dec.done());
}

TEST(FrameCodec, GroupTagAndSackRoundTrip) {
  Rng rng(14);
  for (int i = 0; i < 20; ++i) {
    auto f = random_frame(rng, rng.next_below(4));
    f.header.count = static_cast<std::uint32_t>(f.payloads.size());
    f.header.group = static_cast<std::uint32_t>(rng.next_below(3) == 0
                                                    ? 0
                                                    : 1 + rng.next_below(100));
    if (rng.next_below(2) == 0) {
      std::uint64_t lo = 1 + rng.next_u64() % 50;
      for (std::size_t r = 0; r < 1 + rng.next_below(5); ++r) {
        const std::uint64_t hi = lo + rng.next_below(4);
        f.header.sack.insert_run(lo, hi);
        lo = hi + 2 + rng.next_below(8);  // keep runs maximal
      }
    }
    Encoder enc;
    f.encode(enc);
    Decoder dec(enc.bytes());
    const auto back = transport::wire::EncodedFrame::decode(dec);
    // The presence flags are derived on encode and stripped on decode, so
    // the whole struct compares equal — group-0 / empty-sack frames pay
    // zero extra bytes.
    EXPECT_EQ(back, f);
    EXPECT_TRUE(dec.done());
  }
}

TEST(FrameCodec, ForgedGroupAndSackAreRejected) {
  // A set presence flag with a zero group tag (or an empty sack) is a forged
  // frame: honest encoders only set the flag when the field is non-trivial.
  {
    transport::wire::FrameHeader h;
    h.flags = transport::wire::kFlagHasGroup;
    Encoder enc;
    h.encode(enc);
    auto bytes = enc.bytes();
    bytes.resize(bytes.size() + transport::wire::kGroupTagBytes, 0);
    Decoder dec(bytes);
    EXPECT_THROW(transport::wire::EncodedFrame::decode(dec), DecodeError);
  }
  {
    transport::wire::FrameHeader h;
    h.flags = transport::wire::kFlagHasSack;
    Encoder enc;
    h.encode(enc);
    auto bytes = enc.bytes();
    bytes.resize(bytes.size() + 4, 0);  // sack run count = 0
    Decoder dec(bytes);
    EXPECT_THROW(transport::wire::EncodedFrame::decode(dec), DecodeError);
  }
  // Non-maximal (abutting) runs and inverted runs are rejected by the
  // interval-set decoder, so a malicious sack cannot desync peers.
  {
    transport::wire::EncodedFrame f;
    f.header.sack.insert_run(5, 9);
    Encoder enc;
    f.encode(enc);
    auto bytes = enc.bytes();
    EXPECT_THROW(
        {
          // Flip the run to [9, 5] in place: the single (lo, hi) u64 pair is
          // the last 16 bytes of the encoding.
          std::vector<std::uint8_t> forged = bytes;
          const std::size_t base = forged.size() - 16;
          for (std::size_t k = 0; k < 8; ++k) {
            std::swap(forged[base + k], forged[base + 8 + k]);
          }
          Decoder dec(forged);
          transport::wire::EncodedFrame::decode(dec);
        },
        DecodeError);
  }
}

TEST(FrameCodec, EveryTruncationFailsCleanly) {
  Rng rng(12);
  const auto f = random_frame(rng, 5);
  Encoder enc;
  f.encode(enc);
  const std::vector<std::uint8_t>& full = enc.bytes();
  // Any strict prefix is missing header bytes, a length prefix, or payload
  // bytes: decode must throw DecodeError, never read past the buffer.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(),
                                           full.begin() + static_cast<std::ptrdiff_t>(cut));
    Decoder dec(prefix);
    EXPECT_THROW(transport::wire::EncodedFrame::decode(dec), DecodeError)
        << "prefix of " << cut << " bytes decoded without error";
  }
}

TEST(FrameCodec, OversizedEntryCountIsRejected) {
  transport::wire::FrameHeader h;
  h.count = static_cast<std::uint32_t>(transport::wire::kMaxFrameEntries + 1);
  Encoder enc;
  h.encode(enc);
  Decoder dec(enc.bytes());
  EXPECT_THROW(transport::wire::EncodedFrame::decode(dec), DecodeError);
}

TEST(FrameCodec, ForgedCountWithNoPayloadBytesFailsWithoutHugeAlloc) {
  // count claims the maximum but no payload bytes follow: the reserve is
  // clamped by the bytes actually remaining, and decode fails at entry 0.
  transport::wire::FrameHeader h;
  h.count = static_cast<std::uint32_t>(transport::wire::kMaxFrameEntries);
  Encoder enc;
  h.encode(enc);
  Decoder dec(enc.bytes());
  EXPECT_THROW(transport::wire::EncodedFrame::decode(dec), DecodeError);
}

TEST(Codec, BytesBlobRoundTrip) {
  Rng rng(13);
  for (std::size_t n : {0u, 1u, 63u, 1024u}) {
    std::vector<std::uint8_t> blob(n);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_below(256));
    Encoder enc;
    enc.put_bytes(blob);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_bytes(), blob);
    EXPECT_TRUE(dec.done());
  }
}

}  // namespace
}  // namespace vsgc
