// Codec round-trip tests for every wire message type, including a seeded
// randomized sweep — the wire format is part of the public contract.
#include <gtest/gtest.h>

#include "baseline/two_round_endpoint.hpp"
#include "gcs/messages.hpp"
#include "membership/wire.hpp"
#include "transport/frame.hpp"
#include "util/rng.hpp"

namespace vsgc {
namespace {

View random_view(Rng& rng) {
  View v;
  v.id = ViewId{rng.next_u64() % 1000, static_cast<std::uint32_t>(rng.next_below(8))};
  const int n = static_cast<int>(rng.next_in(1, 6));
  for (int i = 0; i < n; ++i) {
    const ProcessId p{static_cast<std::uint32_t>(rng.next_below(100))};
    v.members.insert(p);
    v.start_id[p] = StartChangeId{rng.next_u64() % 50};
  }
  return v;
}

std::string random_payload(Rng& rng) {
  std::string s(rng.next_below(64), '\0');
  for (char& c : s) c = static_cast<char>(rng.next_in(0, 255));
  return s;
}

template <typename T>
void round_trip(const T& value) {
  Encoder enc;
  value.encode(enc);
  Decoder dec(enc.bytes());
  const auto tag = dec.get_u8();
  EXPECT_NE(tag, 0u);
  const T back = T::decode(dec);
  EXPECT_EQ(value, back);
  EXPECT_TRUE(dec.done());
}

TEST(Codec, GcsViewMsg) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) round_trip(gcs::wire::ViewMsg{random_view(rng)});
}

TEST(Codec, GcsAppMsg) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    round_trip(gcs::wire::AppMsgWire{
        gcs::AppMsg{ProcessId{static_cast<std::uint32_t>(rng.next_below(100))},
                    rng.next_u64(), random_payload(rng)}});
  }
}

TEST(Codec, GcsFwdMsg) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    gcs::wire::FwdMsg m;
    m.orig = ProcessId{static_cast<std::uint32_t>(rng.next_below(100))};
    m.view = random_view(rng);
    m.index = rng.next_in(1, 1 << 20);
    m.msg = gcs::AppMsg{m.orig, rng.next_u64(), random_payload(rng)};
    round_trip(m);
  }
}

TEST(Codec, GcsSyncMsg) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    gcs::wire::SyncMsg m;
    m.cid = StartChangeId{rng.next_u64() % 1000};
    m.view = random_view(rng);
    for (ProcessId p : m.view.members) m.cut[p] = rng.next_in(0, 1 << 16);
    round_trip(m);
  }
}

TEST(Codec, MembershipStartChange) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    membership::wire::StartChange sc;
    sc.cid = StartChangeId{rng.next_u64() % 1000};
    const int n = static_cast<int>(rng.next_in(1, 8));
    for (int k = 0; k < n; ++k) {
      sc.set.insert(ProcessId{static_cast<std::uint32_t>(rng.next_below(100))});
    }
    round_trip(sc);
  }
}

TEST(Codec, MembershipViewDelivery) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    round_trip(membership::wire::ViewDelivery{random_view(rng)});
  }
}

TEST(Codec, MembershipProposal) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    membership::wire::Proposal p;
    p.from = ServerId{static_cast<std::uint32_t>(rng.next_below(8))};
    p.round = rng.next_u64() % 10000;
    const int n = static_cast<int>(rng.next_in(0, 6));
    for (int k = 0; k < n; ++k) {
      const ProcessId q{static_cast<std::uint32_t>(rng.next_below(100))};
      p.local_alive.insert(q);
      p.cids[q] = StartChangeId{rng.next_u64() % 100};
    }
    const int m = static_cast<int>(rng.next_in(1, 4));
    for (int k = 0; k < m; ++k) {
      p.participants.insert(ServerId{static_cast<std::uint32_t>(rng.next_below(8))});
    }
    round_trip(p);
  }
}

TEST(Codec, MembershipHeartbeat) {
  round_trip(membership::wire::Heartbeat{true, 3});
  round_trip(membership::wire::Heartbeat{false, 42});
}

TEST(Codec, WireSizeMatchesEncodedSizeForViewCarriers) {
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const gcs::wire::ViewMsg vm{random_view(rng)};
    Encoder enc;
    vm.encode(enc);
    EXPECT_EQ(vm.wire_size(), enc.size());
  }
}

TEST(Codec, TagsAreDistinct) {
  std::set<std::uint8_t> tags = {
      static_cast<std::uint8_t>(gcs::wire::Tag::kViewMsg),
      static_cast<std::uint8_t>(gcs::wire::Tag::kAppMsg),
      static_cast<std::uint8_t>(gcs::wire::Tag::kFwdMsg),
      static_cast<std::uint8_t>(gcs::wire::Tag::kSyncMsg),
      static_cast<std::uint8_t>(membership::wire::Tag::kStartChange),
      static_cast<std::uint8_t>(membership::wire::Tag::kViewDelivery),
      static_cast<std::uint8_t>(membership::wire::Tag::kProposal),
      static_cast<std::uint8_t>(membership::wire::Tag::kHeartbeat),
  };
  EXPECT_EQ(tags.size(), 8u);
}

TEST(Codec, EncoderReserveNeverChangesEncoding) {
  // reserve() is a pure capacity hint; the byte stream must be identical
  // with and without it, for any mix of scalar and bulk appends.
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    const View v = random_view(rng);
    const std::string s = random_payload(rng);
    Encoder plain;
    Encoder hinted;
    hinted.reserve(1 + 8 + 4 + 4 + 4 * v.members.size() + 4 + s.size());
    for (Encoder* e : {&plain, &hinted}) {
      e->put_u8(0x7e);
      e->put_view_id(v.id);
      e->put_process_set(v.members);
      e->put_string(s);
    }
    ASSERT_EQ(plain.bytes(), hinted.bytes()) << "round " << round;
    Decoder dec(hinted.bytes());
    EXPECT_EQ(dec.get_u8(), 0x7e);
    EXPECT_EQ(dec.get_view_id(), v.id);
    EXPECT_EQ(dec.get_process_set(), v.members);
    EXPECT_EQ(dec.get_string(), s);
    EXPECT_TRUE(dec.done());
  }
}

// --------------------------------------------------------------------------
// Transport frame codec (DESIGN.md §11): packed-frame round-trips and
// adversarial truncated / forged-count inputs. Decoding must fail cleanly
// via Decoder::need() (DecodeError), never read out of bounds, and never let
// a forged entry count drive an unbounded allocation.
// --------------------------------------------------------------------------

transport::wire::EncodedFrame random_frame(Rng& rng, std::size_t entries) {
  transport::wire::EncodedFrame f;
  f.header.flags = static_cast<std::uint8_t>(rng.next_below(4));
  f.header.incarnation = rng.next_u64();
  f.header.first_seq = 1 + rng.next_u64() % 1000;
  f.header.base_seq = f.header.first_seq + rng.next_u64() % 100;
  f.header.ack_incarnation = rng.next_u64();
  f.header.ack_seq = rng.next_u64() % 5000;
  for (std::size_t i = 0; i < entries; ++i) {
    std::vector<std::uint8_t> p(rng.next_below(48));
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_below(256));
    f.payloads.push_back(std::move(p));
  }
  return f;
}

TEST(FrameCodec, PackedFrameRoundTrip) {
  Rng rng(11);
  for (std::size_t entries : {0u, 1u, 2u, 7u, 64u}) {
    const auto f = random_frame(rng, entries);
    Encoder enc;
    f.encode(enc);
    Decoder dec(enc.bytes());
    const auto back = transport::wire::EncodedFrame::decode(dec);
    EXPECT_EQ(back.payloads, f.payloads);
    EXPECT_EQ(back.header.incarnation, f.header.incarnation);
    EXPECT_EQ(back.header.base_seq, f.header.base_seq);
    EXPECT_EQ(back.header.ack_seq, f.header.ack_seq);
    EXPECT_EQ(back.header.count, entries);
    EXPECT_TRUE(dec.done());
  }
}

TEST(FrameCodec, HeaderOnlyAckFrameRoundTrip) {
  transport::wire::EncodedFrame ack;
  ack.header.flags = transport::wire::kFlagHasAck;
  ack.header.ack_incarnation = 7;
  ack.header.ack_seq = 41;
  Encoder enc;
  ack.encode(enc);
  Decoder dec(enc.bytes());
  const auto back = transport::wire::EncodedFrame::decode(dec);
  EXPECT_EQ(back, ack);
  EXPECT_TRUE(dec.done());
}

TEST(FrameCodec, EveryTruncationFailsCleanly) {
  Rng rng(12);
  const auto f = random_frame(rng, 5);
  Encoder enc;
  f.encode(enc);
  const std::vector<std::uint8_t>& full = enc.bytes();
  // Any strict prefix is missing header bytes, a length prefix, or payload
  // bytes: decode must throw DecodeError, never read past the buffer.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(),
                                           full.begin() + static_cast<std::ptrdiff_t>(cut));
    Decoder dec(prefix);
    EXPECT_THROW(transport::wire::EncodedFrame::decode(dec), DecodeError)
        << "prefix of " << cut << " bytes decoded without error";
  }
}

TEST(FrameCodec, OversizedEntryCountIsRejected) {
  transport::wire::FrameHeader h;
  h.count = static_cast<std::uint32_t>(transport::wire::kMaxFrameEntries + 1);
  Encoder enc;
  h.encode(enc);
  Decoder dec(enc.bytes());
  EXPECT_THROW(transport::wire::EncodedFrame::decode(dec), DecodeError);
}

TEST(FrameCodec, ForgedCountWithNoPayloadBytesFailsWithoutHugeAlloc) {
  // count claims the maximum but no payload bytes follow: the reserve is
  // clamped by the bytes actually remaining, and decode fails at entry 0.
  transport::wire::FrameHeader h;
  h.count = static_cast<std::uint32_t>(transport::wire::kMaxFrameEntries);
  Encoder enc;
  h.encode(enc);
  Decoder dec(enc.bytes());
  EXPECT_THROW(transport::wire::EncodedFrame::decode(dec), DecodeError);
}

TEST(Codec, BytesBlobRoundTrip) {
  Rng rng(13);
  for (std::size_t n : {0u, 1u, 63u, 1024u}) {
    std::vector<std::uint8_t> blob(n);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_below(256));
    Encoder enc;
    enc.put_bytes(blob);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_bytes(), blob);
    EXPECT_TRUE(dec.done());
  }
}

}  // namespace
}  // namespace vsgc
