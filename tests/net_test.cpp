// Unit tests for the unreliable datagram network model.
#include <gtest/gtest.h>

#include <any>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "spec/co_rfifo_checker.hpp"
#include "transport/co_rfifo.hpp"

namespace vsgc::net {
namespace {

struct Harness {
  explicit Harness(Network::Config cfg = {}, std::uint64_t seed = 1)
      : network(sim, Rng(seed), cfg) {}

  void attach_collector(NodeId n) {
    network.attach(n, [this, n](NodeId from, const std::any& payload) {
      received.push_back({n, from, std::any_cast<std::string>(payload),
                          sim.now()});
    });
  }

  struct Rx {
    NodeId at;
    NodeId from;
    std::string payload;
    sim::Time when;
  };

  sim::Simulator sim;
  Network network;
  std::vector<Rx> received;
};

TEST(Network, DeliversWithBaseLatency) {
  Network::Config cfg;
  cfg.base_latency = 5 * sim::kMillisecond;
  cfg.jitter = 0;
  Harness h(cfg);
  h.attach_collector(NodeId{2});
  h.network.send(NodeId{1}, NodeId{2}, std::string("x"), 1);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 1u);
  EXPECT_EQ(h.received[0].when, 5 * sim::kMillisecond);
  EXPECT_EQ(h.received[0].from, NodeId{1});
}

TEST(Network, FifoLinksNeverReorder) {
  Network::Config cfg;
  cfg.jitter = 900;  // plenty of jitter to tempt reordering
  Harness h(cfg, 99);
  h.attach_collector(NodeId{2});
  for (int i = 0; i < 50; ++i) {
    h.network.send(NodeId{1}, NodeId{2}, std::to_string(i), 1);
  }
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(h.received[static_cast<std::size_t>(i)].payload,
              std::to_string(i));
  }
}

TEST(Network, DropProbabilityLosesSomePackets) {
  Network::Config cfg;
  cfg.drop_probability = 0.5;
  Harness h(cfg, 7);
  h.attach_collector(NodeId{2});
  for (int i = 0; i < 200; ++i) {
    h.network.send(NodeId{1}, NodeId{2}, std::string("m"), 1);
  }
  h.sim.run_to_quiescence();
  EXPECT_GT(h.received.size(), 50u);
  EXPECT_LT(h.received.size(), 150u);
  EXPECT_EQ(h.network.stats().packets_dropped + h.received.size(), 200u);
}

TEST(Network, DownNodeReceivesNothing) {
  Harness h;
  h.attach_collector(NodeId{2});
  h.network.set_node_up(NodeId{2}, false);
  h.network.send(NodeId{1}, NodeId{2}, std::string("x"), 1);
  h.sim.run_to_quiescence();
  EXPECT_TRUE(h.received.empty());
  h.network.set_node_up(NodeId{2}, true);
  h.network.send(NodeId{1}, NodeId{2}, std::string("y"), 1);
  h.sim.run_to_quiescence();
  EXPECT_EQ(h.received.size(), 1u);
}

TEST(Network, CrashMidFlightDropsPacket) {
  Harness h;
  h.attach_collector(NodeId{2});
  h.network.send(NodeId{1}, NodeId{2}, std::string("x"), 1);
  // Node goes down while the packet is in flight.
  h.network.set_node_up(NodeId{2}, false);
  h.sim.run_to_quiescence();
  EXPECT_TRUE(h.received.empty());
}

TEST(Network, LinkFailureIsSymmetricAndRepairable) {
  Harness h;
  h.attach_collector(NodeId{1});
  h.attach_collector(NodeId{2});
  h.network.set_link_up(NodeId{1}, NodeId{2}, false);
  EXPECT_FALSE(h.network.link_up(NodeId{1}, NodeId{2}));
  EXPECT_FALSE(h.network.link_up(NodeId{2}, NodeId{1}));
  h.network.send(NodeId{1}, NodeId{2}, std::string("a"), 1);
  h.network.send(NodeId{2}, NodeId{1}, std::string("b"), 1);
  h.sim.run_to_quiescence();
  EXPECT_TRUE(h.received.empty());
  h.network.set_link_up(NodeId{1}, NodeId{2}, true);
  h.network.send(NodeId{1}, NodeId{2}, std::string("c"), 1);
  h.sim.run_to_quiescence();
  EXPECT_EQ(h.received.size(), 1u);
}

TEST(Network, PartitionSeparatesComponents) {
  Harness h;
  for (std::uint32_t n = 1; n <= 4; ++n) h.attach_collector(NodeId{n});
  h.network.partition({{NodeId{1}, NodeId{2}}, {NodeId{3}, NodeId{4}}});
  EXPECT_TRUE(h.network.link_up(NodeId{1}, NodeId{2}));
  EXPECT_TRUE(h.network.link_up(NodeId{3}, NodeId{4}));
  EXPECT_FALSE(h.network.link_up(NodeId{1}, NodeId{3}));
  h.network.send(NodeId{1}, NodeId{3}, std::string("x"), 1);
  h.network.send(NodeId{1}, NodeId{2}, std::string("y"), 1);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 1u);
  EXPECT_EQ(h.received[0].payload, "y");
}

TEST(Network, UnassignedNodesReachEveryComponent) {
  Harness h;
  h.attach_collector(NodeId{1});
  h.attach_collector(NodeId{3});
  h.network.partition({{NodeId{1}}, {NodeId{3}}});
  // Node 9 is in no component: it talks to both sides.
  h.network.send(NodeId{9}, NodeId{1}, std::string("a"), 1);
  h.network.send(NodeId{9}, NodeId{3}, std::string("b"), 1);
  h.sim.run_to_quiescence();
  EXPECT_EQ(h.received.size(), 2u);
}

TEST(Network, HealRestoresFullConnectivity) {
  Harness h;
  h.attach_collector(NodeId{3});
  h.network.partition({{NodeId{1}}, {NodeId{3}}});
  h.network.set_link_up(NodeId{1}, NodeId{3}, false);
  h.network.heal();
  EXPECT_TRUE(h.network.link_up(NodeId{1}, NodeId{3}));
  h.network.send(NodeId{1}, NodeId{3}, std::string("x"), 1);
  h.sim.run_to_quiescence();
  EXPECT_EQ(h.received.size(), 1u);
}

TEST(Network, StatsAccounting) {
  Network::Config cfg;
  Harness h(cfg);
  h.attach_collector(NodeId{2});
  h.network.send(NodeId{1}, NodeId{2}, std::string("x"), 100);
  h.network.send(NodeId{1}, NodeId{5}, std::string("y"), 50);  // no handler
  h.sim.run_to_quiescence();
  EXPECT_EQ(h.network.stats().packets_sent, 2u);
  EXPECT_EQ(h.network.stats().packets_delivered, 1u);
  EXPECT_EQ(h.network.stats().packets_dropped, 1u);
  EXPECT_EQ(h.network.stats().bytes_sent, 150u);
}

TEST(Network, OnewayLinkFailureIsAsymmetric) {
  Harness h;
  h.attach_collector(NodeId{1});
  h.attach_collector(NodeId{2});
  h.network.set_oneway_link_up(NodeId{1}, NodeId{2}, false);
  // link_up() reports the symmetric layer only; can_send() folds in the
  // directional state.
  EXPECT_TRUE(h.network.link_up(NodeId{1}, NodeId{2}));
  EXPECT_FALSE(h.network.can_send(NodeId{1}, NodeId{2}));
  EXPECT_TRUE(h.network.can_send(NodeId{2}, NodeId{1}))
      << "the reverse direction must stay up";
  h.network.send(NodeId{1}, NodeId{2}, std::string("lost"), 1);
  h.network.send(NodeId{2}, NodeId{1}, std::string("through"), 1);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 1u);
  EXPECT_EQ(h.received[0].payload, "through");
  h.network.set_oneway_link_up(NodeId{1}, NodeId{2}, true);
  h.network.send(NodeId{1}, NodeId{2}, std::string("again"), 1);
  h.sim.run_to_quiescence();
  EXPECT_EQ(h.received.size(), 2u);
}

// A CO_RFIFO stream driven across a one-way outage interleaved with drop
// spikes and heal(): the transport must mask every loss pattern the network
// can produce, and the spec checker asserts FIFO/no-gap/no-duplicate on each
// delivery throughout.
TEST(Network, OnewayOutageWithDropSpikesKeepsCoRfifoClean) {
  struct Stream {
    Stream() : network(sim, Rng(31), {}),
               a(sim, network, NodeId{1}, {}),
               b(sim, network, NodeId{2}, {}) {
      a.set_reliable({NodeId{2}});
      checker.note_reliable(NodeId{1}, {NodeId{1}, NodeId{2}});
      b.set_deliver_handler([this](NodeId from, const std::any& payload) {
        const auto uid = std::any_cast<std::uint64_t>(payload);
        checker.note_deliver(from, NodeId{2}, uid);
        received.push_back(uid);
      });
    }
    void send(std::uint64_t uid) {
      checker.note_send(NodeId{1}, {NodeId{2}}, uid);
      a.send({NodeId{2}}, uid, 8);
    }
    sim::Simulator sim;
    Network network;
    transport::CoRfifoTransport a;
    transport::CoRfifoTransport b;
    spec::CoRfifoChecker checker;
    std::vector<std::uint64_t> received;
  };

  Stream h;
  for (std::uint64_t i = 1; i <= 3; ++i) h.send(i);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received.size(), 3u);

  // Data direction goes down one-way; acks (2 -> 1) still flow. Traffic sent
  // now is stranded and must be retransmitted later.
  h.network.set_oneway_link_up(NodeId{1}, NodeId{2}, false);
  for (std::uint64_t i = 4; i <= 6; ++i) h.send(i);
  h.sim.run_until(h.sim.now() + 100 * sim::kMillisecond);
  EXPECT_EQ(h.received.size(), 3u) << "nothing crosses the downed direction";

  // Drop spike lands while the one-way outage holds, then the link comes
  // back up with the spike still active: retransmission grinds through it.
  h.network.set_drop_probability(0.4);
  h.send(7);
  h.sim.run_until(h.sim.now() + 50 * sim::kMillisecond);
  h.network.set_oneway_link_up(NodeId{1}, NodeId{2}, true);
  h.sim.run_until(h.sim.now() + 500 * sim::kMillisecond);

  // Second spike cycle ending in a full heal() with the spike lifted.
  h.network.set_oneway_link_up(NodeId{1}, NodeId{2}, false);
  h.send(8);
  h.sim.run_until(h.sim.now() + 50 * sim::kMillisecond);
  h.network.heal();
  h.network.set_drop_probability(0.0);
  h.send(9);
  h.sim.run_to_quiescence();

  EXPECT_EQ(h.received,
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9}))
      << "every message arrives exactly once, in order, despite the outages";
  EXPECT_GE(h.a.stats().retransmissions, 3u)
      << "the stranded messages had to be retransmitted";
}

TEST(Network, DetachPrunesPerLinkTracking) {
  // Regression: detach used to leave the node's last_arrival_ FIFO-tracking
  // entries behind, so attach/detach churn (process crash/recovery cycles)
  // grew the map without bound. Every cycle must end where it started.
  Harness h;
  h.attach_collector(NodeId{1});
  std::size_t after_first_cycle = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    const NodeId peer{2 + static_cast<std::uint32_t>(cycle)};
    h.attach_collector(peer);
    h.network.send(NodeId{1}, peer, Payload(std::string("ping")), 4);
    h.network.send(peer, NodeId{1}, Payload(std::string("pong")), 4);
    h.sim.run_to_quiescence();
    EXPECT_GE(h.network.tracked_links(), 2u) << "cycle " << cycle;
    h.network.detach(peer);
    if (cycle == 0) {
      after_first_cycle = h.network.tracked_links();
    } else {
      EXPECT_EQ(h.network.tracked_links(), after_first_cycle)
          << "tracking grew across churn, cycle " << cycle;
    }
  }
}

TEST(Network, PayloadSharedAcrossFanOut) {
  // One Payload handle delivered to several receivers must expose the same
  // underlying std::any to each handler (no per-recipient copies).
  Harness h;
  std::vector<const std::any*> seen;
  for (std::uint32_t n = 1; n <= 3; ++n) {
    h.network.attach(NodeId{n}, [&seen](NodeId, const std::any& payload) {
      seen.push_back(&payload);
    });
  }
  const Payload shared(std::string("broadcast"));
  for (std::uint32_t n = 1; n <= 3; ++n) {
    h.network.send(NodeId{9}, NodeId{n}, shared, 9);
  }
  h.sim.run_to_quiescence();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(seen[1], seen[2]);
}

TEST(Network, ServerAndClientAddressing) {
  EXPECT_FALSE(is_server_node(node_of(ProcessId{5})));
  EXPECT_TRUE(is_server_node(node_of(ServerId{0})));
  EXPECT_EQ(process_of(node_of(ProcessId{5})), ProcessId{5});
  EXPECT_EQ(server_of(node_of(ServerId{3})), ServerId{3});
  EXPECT_NE(node_of(ProcessId{0}), node_of(ServerId{0}));
}

}  // namespace
}  // namespace vsgc::net
