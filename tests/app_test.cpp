// Tests for the application toolkit: totally ordered multicast atop the GCS
// (per [13]) and the replicated key-value store (state machine approach [35]
// with transitional-set state transfer).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/replicated_kv.hpp"
#include "app/total_order.hpp"
#include "app/world.hpp"

namespace vsgc {
namespace {

struct ToWorld {
  explicit ToWorld(int n, int servers = 1) {
    app::WorldConfig cfg;
    cfg.num_clients = n;
    cfg.num_servers = servers;
    world = std::make_unique<app::World>(cfg);
    for (int i = 0; i < n; ++i) {
      to.push_back(std::make_unique<app::TotalOrder>(
          world->client(i), world->process(i).id()));
    }
  }

  std::unique_ptr<app::World> world;
  std::vector<std::unique_ptr<app::TotalOrder>> to;
};

TEST(TotalOrder, ConcurrentSendersSameOrderEverywhere) {
  ToWorld h(3);
  std::vector<std::vector<std::string>> rx(3);
  for (int i = 0; i < 3; ++i) {
    h.to[static_cast<std::size_t>(i)]->on_deliver(
        [&rx, i](ProcessId from, const std::string& payload) {
          rx[static_cast<std::size_t>(i)].push_back(to_string(from) + ":" +
                                                    payload);
        });
  }
  h.world->start();
  ASSERT_TRUE(h.world->run_until_converged(h.world->all_members(),
                                           5 * sim::kSecond));
  // Interleaved concurrent sends from all three processes.
  for (int k = 0; k < 10; ++k) {
    for (int i = 0; i < 3; ++i) {
      h.to[static_cast<std::size_t>(i)]->send("m" + std::to_string(k));
    }
  }
  h.world->run_for(3 * sim::kSecond);
  ASSERT_EQ(rx[0].size(), 30u);
  EXPECT_EQ(rx[0], rx[1]) << "total order must agree across replicas";
  EXPECT_EQ(rx[0], rx[2]);
  h.world->checkers().finalize();
}

TEST(TotalOrder, OrderSurvivesViewChange) {
  ToWorld h(3);
  std::vector<std::vector<std::string>> rx(3);
  for (int i = 0; i < 3; ++i) {
    h.to[static_cast<std::size_t>(i)]->on_deliver(
        [&rx, i](ProcessId from, const std::string& payload) {
          rx[static_cast<std::size_t>(i)].push_back(to_string(from) + ":" +
                                                    payload);
        });
  }
  h.world->start();
  ASSERT_TRUE(h.world->run_until_converged(h.world->all_members(),
                                           5 * sim::kSecond));
  for (int k = 0; k < 5; ++k) {
    h.to[0]->send("a" + std::to_string(k));
    h.to[1]->send("b" + std::to_string(k));
  }
  // Crash p3 (a non-sequencer member) mid-stream; survivors flush through
  // the view change with identical orders.
  h.world->process(2).crash();
  h.world->run_for(10 * sim::kSecond);
  EXPECT_EQ(rx[0].size(), 10u);
  EXPECT_EQ(rx[0], rx[1]);
  h.world->checkers().finalize();
}

TEST(TotalOrder, SequencerFailoverKeepsAgreement) {
  ToWorld h(3);
  std::vector<std::vector<std::string>> rx(3);
  for (int i = 0; i < 3; ++i) {
    h.to[static_cast<std::size_t>(i)]->on_deliver(
        [&rx, i](ProcessId from, const std::string& payload) {
          rx[static_cast<std::size_t>(i)].push_back(to_string(from) + ":" +
                                                    payload);
        });
  }
  h.world->start();
  ASSERT_TRUE(h.world->run_until_converged(h.world->all_members(),
                                           5 * sim::kSecond));
  EXPECT_EQ(h.to[1]->sequencer(), ProcessId{1});
  for (int k = 0; k < 5; ++k) h.to[1]->send("pre" + std::to_string(k));
  // Kill the sequencer (p1); p2 must take over.
  h.world->process(0).crash();
  h.world->run_for(10 * sim::kSecond);
  EXPECT_EQ(h.to[1]->sequencer(), ProcessId{2});
  h.to[1]->send("post");
  h.to[2]->send("post2");
  h.world->run_for(3 * sim::kSecond);
  EXPECT_EQ(rx[1], rx[2]) << "agreement must survive sequencer failover";
  h.world->checkers().finalize();
}

struct KvWorld {
  explicit KvWorld(int n, int servers = 1) : to_world(n, servers) {
    for (int i = 0; i < n; ++i) {
      kv.push_back(std::make_unique<app::ReplicatedKvStore>(
          *to_world.to[static_cast<std::size_t>(i)],
          to_world.world->process(i).id()));
    }
  }

  app::World& world() { return *to_world.world; }
  ToWorld to_world;
  std::vector<std::unique_ptr<app::ReplicatedKvStore>> kv;
};

TEST(ReplicatedKv, ReplicasConvergeOnSameState) {
  KvWorld h(3);
  h.world().start();
  ASSERT_TRUE(
      h.world().run_until_converged(h.world().all_members(), 5 * sim::kSecond));
  h.kv[0]->set("a", "1");
  h.kv[1]->set("b", "2");
  h.kv[2]->set("a", "3");  // concurrent write to the same key
  h.world().run_for(3 * sim::kSecond);
  EXPECT_EQ(h.kv[0]->state(), h.kv[1]->state());
  EXPECT_EQ(h.kv[1]->state(), h.kv[2]->state());
  EXPECT_EQ(h.kv[0]->state().size(), 2u);
  h.world().checkers().finalize();
}

TEST(ReplicatedKv, DeleteReplicates) {
  KvWorld h(2);
  h.world().start();
  ASSERT_TRUE(
      h.world().run_until_converged(h.world().all_members(), 5 * sim::kSecond));
  h.kv[0]->set("k", "v");
  h.world().run_for(2 * sim::kSecond);
  h.kv[1]->del("k");
  h.world().run_for(2 * sim::kSecond);
  EXPECT_TRUE(h.kv[0]->state().empty());
  EXPECT_TRUE(h.kv[1]->state().empty());
}

TEST(ReplicatedKv, NewcomerReceivesStateTransfer) {
  KvWorld h(3);
  // Client 3 (index 2) joins late, after state exists.
  h.world().server(0).start();
  h.world().process(0).start();
  h.world().process(1).start();
  ASSERT_TRUE(h.world().run_until_converged(
      {ProcessId{1}, ProcessId{2}}, 5 * sim::kSecond));
  h.kv[0]->set("x", "42");
  h.kv[1]->set("y", "7");
  h.world().run_for(2 * sim::kSecond);
  ASSERT_EQ(h.kv[0]->state().size(), 2u);

  h.world().process(2).start();
  ASSERT_TRUE(h.world().run_until_converged(h.world().all_members(),
                                            10 * sim::kSecond));
  h.world().run_for(3 * sim::kSecond);
  EXPECT_TRUE(h.kv[2]->synced());
  EXPECT_EQ(h.kv[2]->state(), h.kv[0]->state());
  EXPECT_EQ(h.kv[2]->state().at("x"), "42");

  // And the newcomer participates in new writes.
  h.kv[2]->set("z", "9");
  h.world().run_for(2 * sim::kSecond);
  EXPECT_EQ(h.kv[0]->state().at("z"), "9");
  EXPECT_EQ(h.kv[1]->state().at("z"), "9");
  h.world().checkers().finalize();
}

TEST(ReplicatedKv, TransitionalSetSkipsStateTransferWhenAllMoveTogether) {
  KvWorld h(2);
  h.world().start();
  ASSERT_TRUE(
      h.world().run_until_converged(h.world().all_members(), 5 * sim::kSecond));
  h.kv[0]->set("a", "1");
  h.world().run_for(2 * sim::kSecond);
  const auto v0 = h.kv[0]->version();
  // Writes continue normally; version counts only commands, so a pure view
  // change with everyone moving together must not inflate it via snapshots.
  h.kv[1]->set("b", "2");
  h.world().run_for(2 * sim::kSecond);
  EXPECT_EQ(h.kv[0]->version(), v0 + 1);
  EXPECT_EQ(h.kv[0]->state(), h.kv[1]->state());
}

TEST(ReplicatedKv, StateSurvivesCrashOfNonPrimary) {
  KvWorld h(3);
  h.world().start();
  ASSERT_TRUE(
      h.world().run_until_converged(h.world().all_members(), 5 * sim::kSecond));
  h.kv[0]->set("k1", "v1");
  h.world().run_for(2 * sim::kSecond);
  h.world().process(2).crash();
  h.world().run_for(8 * sim::kSecond);
  h.kv[0]->set("k2", "v2");
  h.world().run_for(2 * sim::kSecond);
  EXPECT_EQ(h.kv[0]->state(), h.kv[1]->state());
  EXPECT_EQ(h.kv[0]->state().size(), 2u);
  h.world().checkers().finalize();
}

}  // namespace
}  // namespace vsgc
