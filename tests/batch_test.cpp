// Tests for the parallel batch-execution engine: full index coverage, task-
// order result merging, exception selection, and the determinism contract —
// identical per-seed results for any --jobs value, which is what lets the
// sweep tools advertise byte-identical output regardless of parallelism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "app/world.hpp"
#include "sim/batch.hpp"

namespace vsgc::sim {
namespace {

TEST(BatchRunner, HardwareJobsHasFloorOfOne) {
  EXPECT_GE(BatchRunner::hardware_jobs(), 1u);
  EXPECT_GE(BatchRunner(0).jobs(), 1u);  // 0 = auto-detect
}

TEST(BatchRunner, RunsEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {1u, 2u, 3u, 8u}) {
    BatchRunner runner(jobs);
    std::vector<std::atomic<int>> hits(257);
    runner.for_each(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(BatchRunner, CountSmallerThanJobsStillCovers) {
  BatchRunner runner(8);
  std::vector<std::atomic<int>> hits(3);
  runner.for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  runner.for_each(0, [&](std::size_t) { FAIL() << "no tasks to run"; });
}

TEST(BatchRunner, MapReturnsResultsInTaskIndexOrder) {
  for (const std::size_t jobs : {1u, 4u}) {
    BatchRunner runner(jobs);
    const std::vector<std::uint64_t> out = runner.map<std::uint64_t>(
        100, [](std::size_t i) { return static_cast<std::uint64_t>(i * i); });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<std::uint64_t>(i * i));
    }
  }
}

TEST(BatchRunner, SkewedTaskDurationsAllComplete) {
  // Front-loaded heavy tasks force idle workers to steal from the owner's
  // tail; every index must still run exactly once.
  BatchRunner runner(4);
  std::vector<std::atomic<int>> hits(64);
  std::atomic<std::uint64_t> sink{0};
  runner.for_each(hits.size(), [&](std::size_t i) {
    std::uint64_t acc = i;
    const std::uint64_t spins = (i < 4) ? 400000 : 200;
    for (std::uint64_t s = 0; s < spins; ++s) {
      acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    }
    sink.fetch_add(acc, std::memory_order_relaxed);
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(BatchRunner, LowestThrownIndexWinsSequentially) {
  BatchRunner runner(1);
  std::vector<int> ran;
  try {
    runner.for_each(16, [&](std::size_t i) {
      ran.push_back(static_cast<int>(i));
      if (i >= 5) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "5");
  }
}

TEST(BatchRunner, LowestThrownIndexWinsInParallel) {
  BatchRunner runner(4);
  std::mutex mu;
  std::vector<std::size_t> thrown;
  try {
    runner.for_each(64, [&](std::size_t i) {
      if (i % 5 == 2) {
        {
          const std::lock_guard<std::mutex> lock(mu);
          thrown.push_back(i);
        }
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    // Unstarted tasks may be skipped after the first throw, but among the
    // tasks that DID throw, the lowest index must be the one rethrown.
    std::size_t lowest = thrown.front();
    for (const std::size_t t : thrown) {
      if (t < lowest) lowest = t;
    }
    EXPECT_EQ(std::string(e.what()), std::to_string(lowest));
  }
}

// --- Determinism: per-seed World results independent of jobs ---------------

using WorldDigest =
    std::tuple<std::uint64_t, std::uint64_t, std::int64_t, bool>;

WorldDigest run_world(std::uint64_t seed) {
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  cfg.num_servers = 1;
  cfg.seed = seed;
  app::World w(cfg);
  w.start();
  const bool converged =
      w.run_until_converged(w.all_members(), 10 * sim::kSecond);
  return {w.sim().stats().events_executed, w.sim().stats().events_scheduled,
          w.sim().now(), converged};
}

TEST(BatchRunner, WorldSweepResultsIndependentOfJobs) {
  constexpr std::size_t kSeeds = 6;
  const BatchRunner sequential(1);
  const BatchRunner parallel(4);
  const auto base = sequential.map<WorldDigest>(
      kSeeds, [](std::size_t i) { return run_world(i + 1); });
  const auto par = parallel.map<WorldDigest>(
      kSeeds, [](std::size_t i) { return run_world(i + 1); });
  const auto par2 = parallel.map<WorldDigest>(
      kSeeds, [](std::size_t i) { return run_world(i + 1); });
  ASSERT_EQ(base.size(), kSeeds);
  for (std::size_t i = 0; i < kSeeds; ++i) {
    EXPECT_EQ(base[i], par[i]) << "seed " << i + 1 << " diverged at jobs=4";
    EXPECT_EQ(par[i], par2[i]) << "seed " << i + 1 << " not repeatable";
    EXPECT_TRUE(std::get<3>(base[i])) << "seed " << i + 1 << " no converge";
  }
}

}  // namespace
}  // namespace vsgc::sim
