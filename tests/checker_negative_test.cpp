// Negative self-tests for the full checker bundle: every checker wired to a
// TraceBus through spec::AllCheckers must fire on a planted violation inside
// an otherwise-legal event stream. spec_checker_test.cpp exercises checkers
// in isolation; these tests prove the *deployed* wiring (the one Worlds,
// the fuzzer, and the model checker rely on) catches each violation class —
// a vacuous or mis-subscribed checker would pass every integration test
// silently.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "spec/all_checkers.hpp"
#include "spec/co_rfifo_checker.hpp"
#include "spec/eventually.hpp"
#include "spec/liveness_checker.hpp"
#include "util/assert.hpp"

namespace vsgc::spec {
namespace {

const ProcessId kP1{1};
const ProcessId kP2{2};

View make_view(std::uint64_t epoch, std::set<ProcessId> members,
               std::uint64_t cid = 1) {
  View v;
  v.id = ViewId{epoch, 0};
  v.members = members;
  for (ProcessId p : members) v.start_id[p] = StartChangeId{cid};
  return v;
}

gcs::AppMsg msg(ProcessId sender, std::uint64_t uid) {
  return gcs::AppMsg{sender, uid, "m" + std::to_string(uid)};
}

/// A bus with the full production bundle attached, as Worlds wire it.
struct Bundle {
  Bundle() {
    bus.set_recording(true);
    checkers.attach(bus);
  }
  void emit(EventBody body) { bus.emit(++t, std::move(body)); }

  TraceBus bus;
  AllCheckers checkers;
  sim::Time t = 0;
};

/// Runs `fn`; returns the violation message (empty if nothing fired).
std::string violation_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const InvariantViolation& e) {
    return e.what();
  }
  return {};
}

TEST(CheckerBundle, MbrshpFiresOnViewWithoutStartChange) {
  Bundle b;
  b.emit(MbrStartChange{kP1, StartChangeId{1}, {kP1}});
  b.emit(MbrView{kP1, make_view(1, {kP1})});  // legal
  const std::string what = violation_of(
      [&] { b.emit(MbrView{kP2, make_view(1, {kP2})}); });
  EXPECT_NE(what.find("MBRSHP"), std::string::npos) << what;
}

TEST(CheckerBundle, WvRfifoFiresOnDuplicateDelivery) {
  Bundle b;
  const View v1 = make_view(1, {kP1, kP2});
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  b.emit(GcsDeliver{kP2, kP1, msg(kP1, 1)});  // legal
  const std::string what = violation_of(
      [&] { b.emit(GcsDeliver{kP2, kP1, msg(kP1, 1)}); });  // planted dup
  EXPECT_NE(what.find("WV_RFIFO"), std::string::npos) << what;
}

TEST(CheckerBundle, WvRfifoFiresOnFifoInversion) {
  Bundle b;
  const View v1 = make_view(1, {kP1, kP2});
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  b.emit(GcsSend{kP1, msg(kP1, 2)});
  const std::string what = violation_of(
      [&] { b.emit(GcsDeliver{kP2, kP1, msg(kP1, 2)}); });  // skips uid 1
  EXPECT_NE(what.find("WV_RFIFO"), std::string::npos) << what;
}

TEST(CheckerBundle, VsRfifoFiresOnCutMismatch) {
  Bundle b;
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  b.emit(GcsDeliver{kP1, kP1, msg(kP1, 1)});  // p1 self-delivers (SELF holds)
  b.emit(GcsView{kP2, v2, {kP2}});  // first mover fixes the cut at 0 from p1
  // p2 and p1 are both transitional over v1 -> v2 but delivered different
  // message sets in v1: Virtual Synchrony is violated.
  const std::string what =
      violation_of([&] { b.emit(GcsView{kP1, v2, {kP1}}); });
  EXPECT_NE(what.find("VS_RFIFO"), std::string::npos) << what;
}

TEST(CheckerBundle, TransSetFiresOnMemberOutsidePreviousView) {
  Bundle b;
  // p2 is in the new view but not in p1's previous view, so it cannot be in
  // p1's transitional set.
  const std::string what = violation_of(
      [&] { b.emit(GcsView{kP1, make_view(1, {kP1, kP2}), {kP1, kP2}}); });
  EXPECT_NE(what.find("TRANS_SET"), std::string::npos) << what;
}

TEST(CheckerBundle, TransSetFinalizeFiresOnInconsistentSets) {
  Bundle b;
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  // Both move v1 -> v2, so Property 4.1 requires each to list the other as
  // transitional; p1 omits p2.
  b.emit(GcsView{kP1, v2, {kP1}});
  b.emit(GcsView{kP2, v2, {kP1, kP2}});
  const std::string what = violation_of([&] { b.checkers.finalize(); });
  EXPECT_NE(what.find("TRANS_SET"), std::string::npos) << what;
}

TEST(CheckerBundle, SelfFiresOnViewBeforeOwnDelivery) {
  Bundle b;
  const View v1 = make_view(1, {kP1, kP2});
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  // p1 moves on without delivering its own message: Self Delivery violated.
  const std::string what = violation_of(
      [&] { b.emit(GcsView{kP1, make_view(2, {kP1, kP2}, 2), {kP1}}); });
  EXPECT_NE(what.find("SELF"), std::string::npos) << what;
}

TEST(CheckerBundle, ClientFiresOnBlockOkWithoutBlock) {
  Bundle b;
  const std::string what = violation_of([&] { b.emit(GcsBlockOk{kP1}); });
  EXPECT_NE(what.find("CLIENT"), std::string::npos) << what;
}

TEST(CheckerBundle, ClientFiresOnSendWhileBlocked) {
  Bundle b;
  b.emit(GcsBlock{kP1});
  b.emit(GcsBlockOk{kP1});  // legal: answers the outstanding block
  const std::string what =
      violation_of([&] { b.emit(GcsSend{kP1, msg(kP1, 1)}); });
  EXPECT_NE(what.find("CLIENT"), std::string::npos) << what;
}

// CO_RFIFO sits below the GCS trace vocabulary and is fed directly.
TEST(CheckerBundle, CoRfifoFiresOnDuplicateDelivery) {
  CoRfifoChecker c;
  const net::NodeId a{1};
  const net::NodeId b{2};
  c.note_reliable(a, {b});
  c.note_send(a, {b}, 1);
  c.note_deliver(a, b, 1);  // legal
  const std::string what = violation_of([&] { c.note_deliver(a, b, 1); });
  EXPECT_NE(what.find("CO_RFIFO"), std::string::npos) << what;
}

TEST(CheckerBundle, CoRfifoFiresOnGapBeforeReliableMessage) {
  CoRfifoChecker c;
  const net::NodeId a{1};
  const net::NodeId b{2};
  c.note_reliable(a, {b});
  c.note_send(a, {b}, 1);
  c.note_send(a, {b}, 2);
  const std::string what = violation_of([&] { c.note_deliver(a, b, 2); });
  EXPECT_NE(what.find("CO_RFIFO"), std::string::npos) << what;
}

// Liveness (Property 4.2) is a whole-trace post-analysis.
TEST(CheckerBundle, LivenessFiresOnUndeliveredMessageInStableView) {
  Bundle b;
  const View v = make_view(1, {kP1, kP2});
  b.emit(MbrStartChange{kP1, StartChangeId{1}, {kP1, kP2}});
  b.emit(MbrStartChange{kP2, StartChangeId{1}, {kP1, kP2}});
  b.emit(MbrView{kP1, v});
  b.emit(MbrView{kP2, v});
  b.emit(GcsView{kP1, v, {kP1}});
  b.emit(GcsView{kP2, v, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  b.emit(GcsDeliver{kP1, kP1, msg(kP1, 1)});
  // p2 never delivers uid 1 although membership stabilized on v.
  const std::string what =
      violation_of([&] { LivenessChecker::check(b.bus.recorded()); });
  EXPECT_NE(what.find("Liveness"), std::string::npos) << what;
}

TEST(CheckerBundle, LivenessFiresOnMemberWithoutViewDelivery) {
  Bundle b;
  const View v = make_view(1, {kP1, kP2});
  b.emit(MbrStartChange{kP1, StartChangeId{1}, {kP1, kP2}});
  b.emit(MbrStartChange{kP2, StartChangeId{1}, {kP1, kP2}});
  b.emit(MbrView{kP1, v});
  b.emit(MbrView{kP2, v});
  b.emit(GcsView{kP1, v, {kP1}});
  // p2's GCS never delivers the stable view.
  const std::string what =
      violation_of([&] { LivenessChecker::check(b.bus.recorded()); });
  EXPECT_NE(what.find("Liveness"), std::string::npos) << what;
}

TEST(CheckerBundle, LivenessPremiseFailureIsNotAViolation) {
  Bundle b;
  // No membership events at all: the stabilization premise does not hold,
  // so check() reports "nothing to assert" instead of throwing.
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  EXPECT_FALSE(LivenessChecker::check(b.bus.recorded()));
}

// ---------------------------------------------------------------------------
// Eventual-safety bundle (spec/eventually.hpp, DESIGN.md §12): a corruption
// FaultInjected opens a tolerance window; violations inside it are swallowed
// and counted, the same violation after the window closes must still fire.
// ---------------------------------------------------------------------------

constexpr sim::Time kWindow = 10 * sim::kSecond;

struct EventualBundle {
  EventualBundle() : checkers(kWindow) {
    bus.set_recording(true);
    checkers.attach(bus);
  }
  void emit(EventBody body) { bus.emit(++t, std::move(body)); }
  void emit_at(sim::Time at, EventBody body) {
    t = at;
    bus.emit(at, std::move(body));
  }

  TraceBus bus;
  AllEventualCheckers checkers;
  sim::Time t = 0;
};

/// Plants the same violation twice: once inside a corruption tolerance window
/// (must be swallowed and counted) and once after the window closed (must
/// fire with `tag`). Proves each *deployed* eventual checker is neither
/// vacuous (post-window arm) nor exact (in-window arm).
void expect_tolerated_then_fires(
    const std::string& tag, const std::function<void(EventualBundle&)>& setup,
    const std::function<void(EventualBundle&)>& plant) {
  {
    EventualBundle b;
    b.emit(FaultInjected{"corrupt_seq", "in-window"});
    setup(b);
    const std::string what = violation_of([&] { plant(b); });
    EXPECT_TRUE(what.empty())
        << "in-window violation must be tolerated: " << what;
    EXPECT_GT(b.checkers.tolerated(), 0u);
  }
  {
    EventualBundle b;
    b.emit(FaultInjected{"bug_corrupt_wedge", "post-window"});
    setup(b);
    b.t += kWindow + sim::kSecond;  // next emit lands past the deadline
    const std::string what = violation_of([&] { plant(b); });
    EXPECT_NE(what.find(tag), std::string::npos) << what;
  }
}

TEST(EventualBundle, MbrshpToleratedInWindowFiresAfter) {
  expect_tolerated_then_fires(
      "MBRSHP",
      [](EventualBundle& b) {
        b.emit(MbrStartChange{kP1, StartChangeId{1}, {kP1}});
        b.emit(MbrView{kP1, make_view(1, {kP1})});
      },
      [](EventualBundle& b) { b.emit(MbrView{kP2, make_view(1, {kP2})}); });
}

TEST(EventualBundle, WvRfifoToleratedInWindowFiresAfter) {
  const View v1 = make_view(1, {kP1, kP2});
  expect_tolerated_then_fires(
      "WV_RFIFO",
      [&](EventualBundle& b) {
        b.emit(GcsView{kP1, v1, {kP1}});
        b.emit(GcsView{kP2, v1, {kP2}});
        b.emit(GcsSend{kP1, msg(kP1, 1)});
        b.emit(GcsDeliver{kP2, kP1, msg(kP1, 1)});
      },
      [&](EventualBundle& b) { b.emit(GcsDeliver{kP2, kP1, msg(kP1, 1)}); });
}

TEST(EventualBundle, VsRfifoToleratedInWindowFiresAfter) {
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  expect_tolerated_then_fires(
      "VS_RFIFO",
      [&](EventualBundle& b) {
        b.emit(GcsView{kP1, v1, {kP1}});
        b.emit(GcsView{kP2, v1, {kP2}});
        b.emit(GcsSend{kP1, msg(kP1, 1)});
        b.emit(GcsDeliver{kP1, kP1, msg(kP1, 1)});
        b.emit(GcsView{kP2, v2, {kP2}});
      },
      [&](EventualBundle& b) { b.emit(GcsView{kP1, v2, {kP1}}); });
}

TEST(EventualBundle, TransSetToleratedInWindowFiresAfter) {
  expect_tolerated_then_fires(
      "TRANS_SET", [](EventualBundle&) {},
      [](EventualBundle& b) {
        b.emit(GcsView{kP1, make_view(1, {kP1, kP2}), {kP1, kP2}});
      });
}

TEST(EventualBundle, SelfToleratedInWindowFiresAfter) {
  const View v1 = make_view(1, {kP1, kP2});
  expect_tolerated_then_fires(
      "SELF",
      [&](EventualBundle& b) {
        b.emit(GcsView{kP1, v1, {kP1}});
        b.emit(GcsView{kP2, v1, {kP2}});
        b.emit(GcsSend{kP1, msg(kP1, 1)});
      },
      [](EventualBundle& b) {
        b.emit(GcsView{kP1, make_view(2, {kP1, kP2}, 2), {kP1}});
      });
}

TEST(EventualBundle, ClientToleratedInWindowFiresAfter) {
  expect_tolerated_then_fires(
      "CLIENT", [](EventualBundle&) {},
      [](EventualBundle& b) { b.emit(GcsBlockOk{kP1}); });
}

TEST(EventualBundle, NoCorruptionMeansExactSemantics) {
  // Without a corruption event there is no window at all: the eventual
  // bundle degenerates to the exact one, even at time zero.
  EventualBundle b;
  const std::string what = violation_of([&] { b.emit(GcsBlockOk{kP1}); });
  EXPECT_NE(what.find("CLIENT"), std::string::npos) << what;
  EXPECT_EQ(b.checkers.tolerated(), 0u);
}

TEST(EventualBundle, ResyncTracksPostCorruptionStateAfterToleratedViolation) {
  EventualBundle b;
  const View v1 = make_view(1, {kP1, kP2});
  b.emit(FaultInjected{"corrupt_seq", ""});
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  b.emit(GcsDeliver{kP2, kP1, msg(kP1, 1)});
  b.emit(GcsDeliver{kP2, kP1, msg(kP1, 1)});  // duplicate: tolerated
  EXPECT_EQ(b.checkers.wv_rfifo.tolerated(), 1u);
  // The rebuilt automaton keeps checking: the next legal pair passes, and a
  // post-window duplicate of it still fires.
  b.emit(GcsSend{kP1, msg(kP1, 2)});
  b.emit(GcsDeliver{kP2, kP1, msg(kP1, 2)});
  b.t += kWindow;
  const std::string what =
      violation_of([&] { b.emit(GcsDeliver{kP2, kP1, msg(kP1, 2)}); });
  EXPECT_NE(what.find("WV_RFIFO"), std::string::npos) << what;
}

TEST(EventualBundle, StabilizeExtendsAnOpenWindowButNeverReopensAClosedOne) {
  const View v1 = make_view(1, {kP1, kP2});
  const auto legal_stream = [&](EventualBundle& b) {
    b.emit(GcsView{kP1, v1, {kP1}});
    b.emit(GcsView{kP2, v1, {kP2}});
    b.emit(GcsSend{kP1, msg(kP1, 1)});
    b.emit(GcsDeliver{kP2, kP1, msg(kP1, 1)});
  };
  {
    // corrupt at 1s => deadline 11s; stabilize at 9s extends it to 19s, so
    // the duplicate at 15s is still recovery fallout.
    EventualBundle b;
    b.emit_at(1 * sim::kSecond, FaultInjected{"corrupt_ack", ""});
    legal_stream(b);
    b.emit_at(9 * sim::kSecond, FaultInjected{"stabilize", ""});
    const std::string what = violation_of(
        [&] { b.emit_at(15 * sim::kSecond, GcsDeliver{kP2, kP1, msg(kP1, 1)}); });
    EXPECT_TRUE(what.empty()) << what;
    EXPECT_EQ(b.checkers.wv_rfifo.tolerated(), 1u);
  }
  {
    // stabilize at 20s arrives after the window closed at 11s: it must not
    // reopen tolerance, so the duplicate at 21s fires.
    EventualBundle b;
    b.emit_at(1 * sim::kSecond, FaultInjected{"corrupt_ack", ""});
    legal_stream(b);
    b.emit_at(20 * sim::kSecond, FaultInjected{"stabilize", ""});
    const std::string what = violation_of(
        [&] { b.emit_at(21 * sim::kSecond, GcsDeliver{kP2, kP1, msg(kP1, 1)}); });
    EXPECT_NE(what.find("WV_RFIFO"), std::string::npos) << what;
  }
}

TEST(EventualBundle, FinalizeExemptsTransitionsInsideTheWindowOnly) {
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  {
    // Both v1 -> v2 transitions land inside the window: Property 4.1's
    // cross-process check exempts them (they may straddle the recovery).
    EventualBundle b;
    b.emit(FaultInjected{"corrupt_view_id", ""});
    b.emit(GcsView{kP1, v1, {kP1}});
    b.emit(GcsView{kP2, v1, {kP2}});
    b.emit(GcsView{kP1, v2, {kP1}});  // omits p2: inconsistent sets
    b.emit(GcsView{kP2, v2, {kP1, kP2}});
    EXPECT_TRUE(violation_of([&] { b.checkers.finalize(); }).empty());
  }
  {
    // The same inconsistency recorded after the window must still fire.
    EventualBundle b;
    b.emit(FaultInjected{"corrupt_view_id", ""});
    b.emit(GcsView{kP1, v1, {kP1}});
    b.emit(GcsView{kP2, v1, {kP2}});
    b.emit_at(kWindow + 2 * sim::kSecond, GcsView{kP1, v2, {kP1}});
    b.emit(GcsView{kP2, v2, {kP1, kP2}});
    const std::string what = violation_of([&] { b.checkers.finalize(); });
    EXPECT_NE(what.find("TRANS_SET"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace vsgc::spec
