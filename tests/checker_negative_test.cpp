// Negative self-tests for the full checker bundle: every checker wired to a
// TraceBus through spec::AllCheckers must fire on a planted violation inside
// an otherwise-legal event stream. spec_checker_test.cpp exercises checkers
// in isolation; these tests prove the *deployed* wiring (the one Worlds,
// the fuzzer, and the model checker rely on) catches each violation class —
// a vacuous or mis-subscribed checker would pass every integration test
// silently.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "spec/all_checkers.hpp"
#include "spec/co_rfifo_checker.hpp"
#include "spec/liveness_checker.hpp"
#include "util/assert.hpp"

namespace vsgc::spec {
namespace {

const ProcessId kP1{1};
const ProcessId kP2{2};

View make_view(std::uint64_t epoch, std::set<ProcessId> members,
               std::uint64_t cid = 1) {
  View v;
  v.id = ViewId{epoch, 0};
  v.members = members;
  for (ProcessId p : members) v.start_id[p] = StartChangeId{cid};
  return v;
}

gcs::AppMsg msg(ProcessId sender, std::uint64_t uid) {
  return gcs::AppMsg{sender, uid, "m" + std::to_string(uid)};
}

/// A bus with the full production bundle attached, as Worlds wire it.
struct Bundle {
  Bundle() {
    bus.set_recording(true);
    checkers.attach(bus);
  }
  void emit(EventBody body) { bus.emit(++t, std::move(body)); }

  TraceBus bus;
  AllCheckers checkers;
  sim::Time t = 0;
};

/// Runs `fn`; returns the violation message (empty if nothing fired).
std::string violation_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const InvariantViolation& e) {
    return e.what();
  }
  return {};
}

TEST(CheckerBundle, MbrshpFiresOnViewWithoutStartChange) {
  Bundle b;
  b.emit(MbrStartChange{kP1, StartChangeId{1}, {kP1}});
  b.emit(MbrView{kP1, make_view(1, {kP1})});  // legal
  const std::string what = violation_of(
      [&] { b.emit(MbrView{kP2, make_view(1, {kP2})}); });
  EXPECT_NE(what.find("MBRSHP"), std::string::npos) << what;
}

TEST(CheckerBundle, WvRfifoFiresOnDuplicateDelivery) {
  Bundle b;
  const View v1 = make_view(1, {kP1, kP2});
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  b.emit(GcsDeliver{kP2, kP1, msg(kP1, 1)});  // legal
  const std::string what = violation_of(
      [&] { b.emit(GcsDeliver{kP2, kP1, msg(kP1, 1)}); });  // planted dup
  EXPECT_NE(what.find("WV_RFIFO"), std::string::npos) << what;
}

TEST(CheckerBundle, WvRfifoFiresOnFifoInversion) {
  Bundle b;
  const View v1 = make_view(1, {kP1, kP2});
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  b.emit(GcsSend{kP1, msg(kP1, 2)});
  const std::string what = violation_of(
      [&] { b.emit(GcsDeliver{kP2, kP1, msg(kP1, 2)}); });  // skips uid 1
  EXPECT_NE(what.find("WV_RFIFO"), std::string::npos) << what;
}

TEST(CheckerBundle, VsRfifoFiresOnCutMismatch) {
  Bundle b;
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  b.emit(GcsDeliver{kP1, kP1, msg(kP1, 1)});  // p1 self-delivers (SELF holds)
  b.emit(GcsView{kP2, v2, {kP2}});  // first mover fixes the cut at 0 from p1
  // p2 and p1 are both transitional over v1 -> v2 but delivered different
  // message sets in v1: Virtual Synchrony is violated.
  const std::string what =
      violation_of([&] { b.emit(GcsView{kP1, v2, {kP1}}); });
  EXPECT_NE(what.find("VS_RFIFO"), std::string::npos) << what;
}

TEST(CheckerBundle, TransSetFiresOnMemberOutsidePreviousView) {
  Bundle b;
  // p2 is in the new view but not in p1's previous view, so it cannot be in
  // p1's transitional set.
  const std::string what = violation_of(
      [&] { b.emit(GcsView{kP1, make_view(1, {kP1, kP2}), {kP1, kP2}}); });
  EXPECT_NE(what.find("TRANS_SET"), std::string::npos) << what;
}

TEST(CheckerBundle, TransSetFinalizeFiresOnInconsistentSets) {
  Bundle b;
  const View v1 = make_view(1, {kP1, kP2});
  const View v2 = make_view(2, {kP1, kP2}, 2);
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  // Both move v1 -> v2, so Property 4.1 requires each to list the other as
  // transitional; p1 omits p2.
  b.emit(GcsView{kP1, v2, {kP1}});
  b.emit(GcsView{kP2, v2, {kP1, kP2}});
  const std::string what = violation_of([&] { b.checkers.finalize(); });
  EXPECT_NE(what.find("TRANS_SET"), std::string::npos) << what;
}

TEST(CheckerBundle, SelfFiresOnViewBeforeOwnDelivery) {
  Bundle b;
  const View v1 = make_view(1, {kP1, kP2});
  b.emit(GcsView{kP1, v1, {kP1}});
  b.emit(GcsView{kP2, v1, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  // p1 moves on without delivering its own message: Self Delivery violated.
  const std::string what = violation_of(
      [&] { b.emit(GcsView{kP1, make_view(2, {kP1, kP2}, 2), {kP1}}); });
  EXPECT_NE(what.find("SELF"), std::string::npos) << what;
}

TEST(CheckerBundle, ClientFiresOnBlockOkWithoutBlock) {
  Bundle b;
  const std::string what = violation_of([&] { b.emit(GcsBlockOk{kP1}); });
  EXPECT_NE(what.find("CLIENT"), std::string::npos) << what;
}

TEST(CheckerBundle, ClientFiresOnSendWhileBlocked) {
  Bundle b;
  b.emit(GcsBlock{kP1});
  b.emit(GcsBlockOk{kP1});  // legal: answers the outstanding block
  const std::string what =
      violation_of([&] { b.emit(GcsSend{kP1, msg(kP1, 1)}); });
  EXPECT_NE(what.find("CLIENT"), std::string::npos) << what;
}

// CO_RFIFO sits below the GCS trace vocabulary and is fed directly.
TEST(CheckerBundle, CoRfifoFiresOnDuplicateDelivery) {
  CoRfifoChecker c;
  const net::NodeId a{1};
  const net::NodeId b{2};
  c.note_reliable(a, {b});
  c.note_send(a, {b}, 1);
  c.note_deliver(a, b, 1);  // legal
  const std::string what = violation_of([&] { c.note_deliver(a, b, 1); });
  EXPECT_NE(what.find("CO_RFIFO"), std::string::npos) << what;
}

TEST(CheckerBundle, CoRfifoFiresOnGapBeforeReliableMessage) {
  CoRfifoChecker c;
  const net::NodeId a{1};
  const net::NodeId b{2};
  c.note_reliable(a, {b});
  c.note_send(a, {b}, 1);
  c.note_send(a, {b}, 2);
  const std::string what = violation_of([&] { c.note_deliver(a, b, 2); });
  EXPECT_NE(what.find("CO_RFIFO"), std::string::npos) << what;
}

// Liveness (Property 4.2) is a whole-trace post-analysis.
TEST(CheckerBundle, LivenessFiresOnUndeliveredMessageInStableView) {
  Bundle b;
  const View v = make_view(1, {kP1, kP2});
  b.emit(MbrStartChange{kP1, StartChangeId{1}, {kP1, kP2}});
  b.emit(MbrStartChange{kP2, StartChangeId{1}, {kP1, kP2}});
  b.emit(MbrView{kP1, v});
  b.emit(MbrView{kP2, v});
  b.emit(GcsView{kP1, v, {kP1}});
  b.emit(GcsView{kP2, v, {kP2}});
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  b.emit(GcsDeliver{kP1, kP1, msg(kP1, 1)});
  // p2 never delivers uid 1 although membership stabilized on v.
  const std::string what =
      violation_of([&] { LivenessChecker::check(b.bus.recorded()); });
  EXPECT_NE(what.find("Liveness"), std::string::npos) << what;
}

TEST(CheckerBundle, LivenessFiresOnMemberWithoutViewDelivery) {
  Bundle b;
  const View v = make_view(1, {kP1, kP2});
  b.emit(MbrStartChange{kP1, StartChangeId{1}, {kP1, kP2}});
  b.emit(MbrStartChange{kP2, StartChangeId{1}, {kP1, kP2}});
  b.emit(MbrView{kP1, v});
  b.emit(MbrView{kP2, v});
  b.emit(GcsView{kP1, v, {kP1}});
  // p2's GCS never delivers the stable view.
  const std::string what =
      violation_of([&] { LivenessChecker::check(b.bus.recorded()); });
  EXPECT_NE(what.find("Liveness"), std::string::npos) << what;
}

TEST(CheckerBundle, LivenessPremiseFailureIsNotAViolation) {
  Bundle b;
  // No membership events at all: the stabilization premise does not hold,
  // so check() reports "nothing to assert" instead of throwing.
  b.emit(GcsSend{kP1, msg(kP1, 1)});
  EXPECT_FALSE(LivenessChecker::check(b.bus.recorded()));
}

}  // namespace
}  // namespace vsgc::spec
