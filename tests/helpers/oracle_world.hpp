// Test fixture: GCS end-points over a simulated network, driven by the
// scripted OracleMembership instead of real membership servers. The test
// plays the nondeterministic environment of the MBRSHP spec, which makes
// staged scenarios (partitions, missed messages, forwarding) deterministic.
#pragma once

#include <memory>
#include <vector>

#include "app/blocking_client.hpp"
#include "gcs/gcs_endpoint.hpp"
#include "gcs/process.hpp"
#include "membership/oracle.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "spec/all_checkers.hpp"
#include "util/rng.hpp"

namespace vsgc::testing {

class OracleWorld {
 public:
  explicit OracleWorld(int n, std::uint64_t seed = 1,
                       net::Network::Config net_config = {},
                       gcs::ForwardingKind forwarding =
                           gcs::ForwardingKind::kMinCopies) {
    network = std::make_unique<net::Network>(sim, Rng(seed), net_config);
    trace.set_recording(true);
    checkers.attach(trace);
    for (int i = 0; i < n; ++i) {
      const ProcessId p{static_cast<std::uint32_t>(i + 1)};
      transports.push_back(std::make_unique<transport::CoRfifoTransport>(
          sim, *network, net::node_of(p)));
      endpoints.push_back(std::make_unique<gcs::GcsEndpoint>(
          sim, *transports.back(), p, gcs::make_strategy(forwarding),
          &trace));
      clients.push_back(
          std::make_unique<app::BlockingClient>(*endpoints.back()));
      auto* ep = endpoints.back().get();
      transports.back()->set_deliver_handler(
          [ep](net::NodeId from, const std::any& payload) {
            ep->on_co_rfifo_deliver(net::process_of(from), payload);
          });
      oracle.attach(p, *ep);
    }
  }

  ProcessId pid(int i) const { return ProcessId{static_cast<std::uint32_t>(i + 1)}; }

  std::set<ProcessId> pids(std::initializer_list<int> idx) const {
    std::set<ProcessId> out;
    for (int i : idx) out.insert(pid(i));
    return out;
  }

  std::set<ProcessId> all() const {
    std::set<ProcessId> out;
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      out.insert(pid(static_cast<int>(i)));
    }
    return out;
  }

  gcs::GcsEndpoint& ep(int i) { return *endpoints.at(static_cast<std::size_t>(i)); }
  app::BlockingClient& client(int i) { return *clients.at(static_cast<std::size_t>(i)); }
  transport::CoRfifoTransport& transport(int i) {
    return *transports.at(static_cast<std::size_t>(i));
  }

  void run(sim::Time d = 500 * sim::kMillisecond) { sim.run_until(sim.now() + d); }
  void settle() { sim.run_to_quiescence(); }

  /// Standard reconfiguration: start_change + view over `members`, then run.
  View change_view(const std::set<ProcessId>& members) {
    oracle.start_change(members);
    run();
    const View v = oracle.deliver_view(members);
    run();
    return v;
  }

  sim::Simulator sim;
  spec::TraceBus trace;
  spec::AllCheckers checkers;
  std::unique_ptr<net::Network> network;
  membership::OracleMembership oracle;
  std::vector<std::unique_ptr<transport::CoRfifoTransport>> transports;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> endpoints;
  std::vector<std::unique_ptr<app::BlockingClient>> clients;
};

}  // namespace vsgc::testing
