// Unit tests for the timeout failure detector.
#include <gtest/gtest.h>

#include "membership/failure_detector.hpp"

namespace vsgc::membership {
namespace {

struct Harness {
  explicit Harness(FailureDetector::Config cfg = {})
      : fd(sim, cfg, [this]() { ++changes; }) {}

  sim::Simulator sim;
  int changes = 0;
  FailureDetector fd;
};

const net::NodeId kN1{1};
const net::NodeId kN2{2};

TEST(FailureDetector, InitialAlivenessAsConfigured) {
  Harness h;
  h.fd.monitor(kN1, true);
  h.fd.monitor(kN2, false);
  EXPECT_TRUE(h.fd.alive(kN1));
  EXPECT_FALSE(h.fd.alive(kN2));
  EXPECT_EQ(h.fd.alive_set(), std::set<net::NodeId>{kN1});
}

TEST(FailureDetector, SilenceSuspectsAfterTimeout) {
  FailureDetector::Config cfg;
  cfg.timeout = 100 * sim::kMillisecond;
  cfg.check_interval = 20 * sim::kMillisecond;
  Harness h(cfg);
  h.fd.monitor(kN1, true);
  h.fd.start();
  h.sim.run_until(90 * sim::kMillisecond);
  EXPECT_TRUE(h.fd.alive(kN1)) << "not yet past the timeout";
  h.sim.run_until(200 * sim::kMillisecond);
  EXPECT_FALSE(h.fd.alive(kN1));
  EXPECT_EQ(h.changes, 1);
}

TEST(FailureDetector, HeartbeatsKeepNodeAlive) {
  FailureDetector::Config cfg;
  cfg.timeout = 100 * sim::kMillisecond;
  cfg.check_interval = 20 * sim::kMillisecond;
  Harness h(cfg);
  h.fd.monitor(kN1, true);
  h.fd.start();
  for (int i = 1; i <= 20; ++i) {
    h.sim.schedule_at(i * 50 * sim::kMillisecond, [&h]() { h.fd.heard(kN1); });
  }
  h.sim.run_until(900 * sim::kMillisecond);
  EXPECT_TRUE(h.fd.alive(kN1));
  EXPECT_EQ(h.changes, 0);
}

TEST(FailureDetector, HeardResurrectsAndNotifies) {
  FailureDetector::Config cfg;
  cfg.timeout = 50 * sim::kMillisecond;
  cfg.check_interval = 10 * sim::kMillisecond;
  Harness h(cfg);
  h.fd.monitor(kN1, true);
  h.fd.start();
  h.sim.run_until(200 * sim::kMillisecond);
  ASSERT_FALSE(h.fd.alive(kN1));
  const int changes_before = h.changes;
  h.fd.heard(kN1);
  EXPECT_TRUE(h.fd.alive(kN1));
  EXPECT_EQ(h.changes, changes_before + 1);
}

TEST(FailureDetector, UnmonitoredNodesIgnored) {
  Harness h;
  h.fd.heard(kN2);  // must not crash or notify
  EXPECT_FALSE(h.fd.alive(kN2));
  EXPECT_EQ(h.changes, 0);
}

TEST(FailureDetector, ForgetStopsMonitoring) {
  FailureDetector::Config cfg;
  cfg.timeout = 50 * sim::kMillisecond;
  cfg.check_interval = 10 * sim::kMillisecond;
  Harness h(cfg);
  h.fd.monitor(kN1, true);
  h.fd.start();
  h.fd.forget(kN1);
  h.sim.run_until(200 * sim::kMillisecond);
  EXPECT_EQ(h.changes, 0) << "forgotten node must not trigger suspicion";
}

TEST(FailureDetector, StopCancelsSweeps) {
  FailureDetector::Config cfg;
  cfg.timeout = 50 * sim::kMillisecond;
  cfg.check_interval = 10 * sim::kMillisecond;
  Harness h(cfg);
  h.fd.monitor(kN1, true);
  h.fd.start();
  h.fd.stop();
  h.sim.run_until(200 * sim::kMillisecond);
  EXPECT_TRUE(h.fd.alive(kN1)) << "no sweeps after stop";
}

}  // namespace
}  // namespace vsgc::membership
