// Kernel identity harness: the optimized slab-arena kernel must produce the
// exact execution order of the original std::priority_queue kernel on every
// workload. A reference copy of the original kernel (shared_ptr<bool>
// liveness flags, std::function events, binary heap ordered by (when, seq))
// runs the same randomized self-scheduling/cancelling workload as
// sim::Simulator, with and without a scripted NondetSource, and the full
// firing sequences and kernel stats are compared element by element.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/nondet.hpp"
#include "sim/simulator.hpp"

namespace vsgc::sim {
namespace {

// --- Reference kernel: the pre-optimization implementation -----------------

class RefTimerHandle {
 public:
  RefTimerHandle() = default;
  explicit RefTimerHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}

  void cancel() {
    if (auto alive = alive_.lock()) *alive = false;
  }
  bool pending() const {
    auto alive = alive_.lock();
    return alive && *alive;
  }

 private:
  std::weak_ptr<bool> alive_;
};

class RefSimulator {
 public:
  struct Stats {
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_executed = 0;
    std::uint64_t events_cancelled = 0;
    std::size_t peak_queue_depth = 0;
  };

  Time now() const { return now_; }
  const Stats& stats() const { return stats_; }
  void set_nondet(NondetSource* source) { nondet_ = source; }

  RefTimerHandle schedule(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  RefTimerHandle schedule_at(Time when, std::function<void()> fn) {
    auto alive = std::make_shared<bool>(true);
    queue_.push(Event{when, next_seq_++, alive, std::move(fn)});
    ++stats_.events_scheduled;
    if (queue_.size() > stats_.peak_queue_depth) {
      stats_.peak_queue_depth = queue_.size();
    }
    return RefTimerHandle(alive);
  }

  std::size_t run_to_quiescence() {
    std::size_t executed = 0;
    while (!queue_.empty()) executed += step();
    return executed;
  }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    std::shared_ptr<bool> alive;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  Event pop_next() {
    Event ev = queue_.top();
    queue_.pop();
    if (nondet_ == nullptr || !*ev.alive) return ev;
    std::vector<Event> batch;
    batch.push_back(std::move(ev));
    while (!queue_.empty() && queue_.top().when == batch.front().when) {
      Event peer = queue_.top();
      queue_.pop();
      if (!*peer.alive) {
        ++stats_.events_cancelled;
        continue;
      }
      batch.push_back(std::move(peer));
    }
    std::size_t pick = 0;
    if (batch.size() > 1) {
      pick = nondet_->choose("sim.tiebreak", batch.size());
      if (pick >= batch.size()) pick = batch.size() - 1;
    }
    Event chosen = std::move(batch[pick]);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i != pick) queue_.push(std::move(batch[i]));
    }
    return chosen;
  }

  std::size_t step() {
    Event ev = pop_next();
    now_ = ev.when > now_ ? ev.when : now_;
    if (!*ev.alive) {
      ++stats_.events_cancelled;
      return 0;
    }
    *ev.alive = false;
    ev.fn();
    ++stats_.events_executed;
    return 1;
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
  NondetSource* nondet_ = nullptr;
};

// --- Scripted nondeterminism: a deterministic non-default chooser ----------

class ScriptedNondet : public NondetSource {
 public:
  std::size_t choose(const char* /*kind*/, std::size_t n) override {
    ++calls_;
    return (calls_ * 7919u) % n;  // deterministic, frequently non-zero
  }

 private:
  std::size_t calls_ = 0;
};

// --- Randomized workload, identical for both kernels -----------------------
//
// Every decision (child count, delays, cancellations) comes from one LCG
// advanced inside handlers; the streams stay aligned exactly as long as the
// two kernels fire events in the same order, so any ordering divergence
// cascades into a visible trace mismatch.

struct WorkloadTrace {
  std::vector<std::pair<Time, int>> fired;
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::size_t peak_depth = 0;

  bool operator==(const WorkloadTrace&) const = default;
};

template <typename SimT, typename HandleT>
class Driver {
 public:
  WorkloadTrace run(std::uint64_t seed, NondetSource* nondet, int budget) {
    budget_ = budget;
    rng_ = seed * 2 + 1;
    if (nondet != nullptr) sim_.set_nondet(nondet);
    for (int i = 0; i < 5; ++i) {
      spawn(static_cast<Time>(next() % 4));
    }
    sim_.run_to_quiescence();
    trace_.scheduled = sim_.stats().events_scheduled;
    trace_.executed = sim_.stats().events_executed;
    trace_.cancelled = sim_.stats().events_cancelled;
    trace_.peak_depth = sim_.stats().peak_queue_depth;
    return trace_;
  }

 private:
  std::uint64_t next() {
    rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
    return rng_ >> 33;
  }

  void spawn(Time delay) {
    const int id = next_id_++;
    handles_.push_back(sim_.schedule(delay, [this, id] { fire(id); }));
  }

  void fire(int id) {
    trace_.fired.emplace_back(sim_.now(), id);
    if ((next() & 7u) == 0 && !handles_.empty()) {
      handles_[next() % handles_.size()].cancel();
    }
    // 1-2 children per firing (supercritical) so the workload runs until
    // the budget caps spawning, instead of going extinct early.
    const int kids = static_cast<int>(1 + next() % 2);
    for (int k = 0; k < kids && next_id_ < budget_; ++k) {
      // Small delays (0-3) force frequent same-timestamp ties, the hardest
      // ordering case and the one the NondetSource hooks into.
      spawn(static_cast<Time>(next() % 4));
    }
  }

  SimT sim_;
  WorkloadTrace trace_;
  std::vector<HandleT> handles_;
  std::uint64_t rng_ = 0;
  int next_id_ = 0;
  int budget_ = 0;
};

void expect_identical(std::uint64_t seed, bool with_nondet) {
  ScriptedNondet ref_nd, new_nd;
  Driver<RefSimulator, RefTimerHandle> ref;
  Driver<Simulator, TimerHandle> opt;
  const WorkloadTrace a =
      ref.run(seed, with_nondet ? &ref_nd : nullptr, 2000);
  const WorkloadTrace b =
      opt.run(seed, with_nondet ? &new_nd : nullptr, 2000);
  ASSERT_EQ(a.fired.size(), b.fired.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.fired.size(); ++i) {
    ASSERT_EQ(a.fired[i], b.fired[i])
        << "seed " << seed << " diverged at firing " << i;
  }
  EXPECT_EQ(a, b) << "stats diverged for seed " << seed;
  EXPECT_GT(a.executed, 100u) << "workload too small to be meaningful";
}

TEST(KernelIdentity, MatchesReferenceKernelAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_identical(seed, /*with_nondet=*/false);
  }
}

TEST(KernelIdentity, MatchesReferenceKernelUnderScriptedNondet) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    expect_identical(seed, /*with_nondet=*/true);
  }
}

}  // namespace
}  // namespace vsgc::sim
