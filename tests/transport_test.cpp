// Tests for the CO_RFIFO transport against the Figure 3 service spec:
// gap-free FIFO to reliable peers under loss, suffix loss for non-reliable
// peers, fresh incarnations, crash/recovery, and the raw side-channel.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "spec/co_rfifo_checker.hpp"
#include "transport/co_rfifo.hpp"

namespace vsgc::transport {
namespace {

struct Harness {
  explicit Harness(int n, net::Network::Config cfg = {}, std::uint64_t seed = 1)
      : network(sim, Rng(seed), cfg) {
    for (int i = 0; i < n; ++i) {
      const net::NodeId node{static_cast<std::uint32_t>(i + 1)};
      nodes.push_back(node);
      transports.push_back(
          std::make_unique<CoRfifoTransport>(sim, network, node));
      received.emplace_back();
      transports.back()->set_deliver_handler(
          [this, i](net::NodeId from, const std::any& payload) {
            const auto uid = std::any_cast<std::uint64_t>(payload);
            received[static_cast<std::size_t>(i)].push_back({from, uid});
            checker.note_deliver(from, nodes[static_cast<std::size_t>(i)], uid);
          });
    }
  }

  void send(int from, std::set<int> to, std::uint64_t uid) {
    std::set<net::NodeId> dests;
    for (int t : to) dests.insert(nodes[static_cast<std::size_t>(t)]);
    checker.note_send(nodes[static_cast<std::size_t>(from)], dests, uid);
    transports[static_cast<std::size_t>(from)]->send(dests, uid, 8);
  }

  void set_reliable(int at, std::set<int> peers) {
    std::set<net::NodeId> set;
    for (int p : peers) set.insert(nodes[static_cast<std::size_t>(p)]);
    set.insert(nodes[static_cast<std::size_t>(at)]);
    checker.note_reliable(nodes[static_cast<std::size_t>(at)], set);
    transports[static_cast<std::size_t>(at)]->set_reliable(set);
  }

  sim::Simulator sim;
  net::Network network;
  spec::CoRfifoChecker checker;
  std::vector<net::NodeId> nodes;
  std::vector<std::unique_ptr<CoRfifoTransport>> transports;
  std::vector<std::vector<std::pair<net::NodeId, std::uint64_t>>> received;
};

TEST(CoRfifo, BasicMulticastFifo) {
  Harness h(3);
  h.set_reliable(0, {1, 2});
  for (std::uint64_t i = 1; i <= 20; ++i) h.send(0, {1, 2}, i);
  h.sim.run_to_quiescence();
  for (int r : {1, 2}) {
    const auto& rx = h.received[static_cast<std::size_t>(r)];
    ASSERT_EQ(rx.size(), 20u);
    for (std::uint64_t i = 1; i <= 20; ++i) EXPECT_EQ(rx[i - 1].second, i);
  }
}

TEST(CoRfifo, GapFreeUnderHeavyLoss) {
  net::Network::Config cfg;
  cfg.drop_probability = 0.4;
  Harness h(2, cfg, 1234);
  h.set_reliable(0, {1});
  for (std::uint64_t i = 1; i <= 100; ++i) h.send(0, {1}, i);
  h.sim.run_to_quiescence();
  const auto& rx = h.received[1];
  ASSERT_EQ(rx.size(), 100u) << "retransmission must fill every gap";
  for (std::uint64_t i = 1; i <= 100; ++i) EXPECT_EQ(rx[i - 1].second, i);
  EXPECT_GT(h.transports[0]->stats().retransmissions, 0u);
}

TEST(CoRfifo, LossToNonReliablePeerIsSilent) {
  net::Network::Config cfg;
  cfg.drop_probability = 0.6;
  Harness h(2, cfg, 5);
  // Peer 1 is NOT in 0's reliable set: suffix loss is allowed.
  for (std::uint64_t i = 1; i <= 50; ++i) h.send(0, {1}, i);
  h.sim.run_to_quiescence();
  // Whatever arrived is in order without duplicates (checker verifies), and
  // certainly not everything arrived.
  EXPECT_LT(h.received[1].size(), 50u);
}

TEST(CoRfifo, ReAddedPeerGetsFreshIncarnation) {
  Harness h(2);
  h.set_reliable(0, {1});
  h.send(0, {1}, 1);
  h.sim.run_to_quiescence();
  // Drop peer 1: the connection is abandoned; in-flight suffix may be lost.
  h.set_reliable(0, {});
  h.send(0, {1}, 2);  // sent on a dead connection
  h.set_reliable(0, {1});
  h.send(0, {1}, 3);  // fresh incarnation
  h.sim.run_to_quiescence();
  const auto& rx = h.received[1];
  ASSERT_GE(rx.size(), 2u);
  EXPECT_EQ(rx.front().second, 1u);
  EXPECT_EQ(rx.back().second, 3u);
}

TEST(CoRfifo, SelfSendLoopsBack) {
  Harness h(1);
  h.send(0, {0}, 42);
  EXPECT_TRUE(h.received[0].empty()) << "loopback must stay asynchronous";
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received[0].size(), 1u);
  EXPECT_EQ(h.received[0][0].second, 42u);
}

TEST(CoRfifo, CrashWipesStateAndStopsDelivery) {
  Harness h(2);
  h.set_reliable(0, {1});
  h.transports[1]->crash();
  h.send(0, {1}, 1);
  h.sim.run_until(100 * sim::kMillisecond);
  EXPECT_TRUE(h.received[1].empty());
  EXPECT_TRUE(h.transports[1]->crashed());
}

TEST(CoRfifo, RecoveryResynchronizesStreams) {
  Harness h(2);
  h.set_reliable(0, {1});
  h.send(0, {1}, 1);
  h.sim.run_to_quiescence();
  h.transports[1]->crash();
  h.sim.run_until(h.sim.now() + sim::kMillisecond);
  h.transports[1]->recover();
  // Retransmissions of old messages are stale once 0 re-establishes; force a
  // fresh connection by cycling the reliable set, as the GCS layer does.
  h.set_reliable(0, {});
  h.set_reliable(0, {1});
  h.send(0, {1}, 2);
  h.sim.run_to_quiescence();
  ASSERT_FALSE(h.received[1].empty());
  EXPECT_EQ(h.received[1].back().second, 2u);
}

TEST(CoRfifo, InterleavedSendersIndependentChannels) {
  Harness h(3);
  h.set_reliable(0, {2});
  h.set_reliable(1, {2});
  for (std::uint64_t i = 1; i <= 10; ++i) {
    h.send(0, {2}, 100 + i);
    h.send(1, {2}, 200 + i);
  }
  h.sim.run_to_quiescence();
  std::vector<std::uint64_t> from0, from1;
  for (const auto& [from, uid] : h.received[2]) {
    (from == h.nodes[0] ? from0 : from1).push_back(uid);
  }
  ASSERT_EQ(from0.size(), 10u);
  ASSERT_EQ(from1.size(), 10u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(from0[i - 1], 100 + i);
    EXPECT_EQ(from1[i - 1], 200 + i);
  }
}

TEST(CoRfifo, RawSideChannelBypassesSequencing) {
  Harness h(2);
  int raw_count = 0;
  h.transports[1]->set_raw_handler(
      [&raw_count](net::NodeId, const std::any& payload) {
        EXPECT_EQ(std::any_cast<std::string>(payload), "hb");
        ++raw_count;
      });
  h.transports[0]->send_raw(h.nodes[1], std::string("hb"), 2);
  h.sim.run_to_quiescence();
  EXPECT_EQ(raw_count, 1);
  EXPECT_EQ(h.transports[1]->stats().messages_delivered, 0u);
}

TEST(CoRfifo, RetransmissionStopsAfterAck) {
  Harness h(2);
  h.set_reliable(0, {1});
  h.send(0, {1}, 1);
  h.sim.run_to_quiescence();
  const auto retrans = h.transports[0]->stats().retransmissions;
  h.sim.run_until(h.sim.now() + sim::kSecond);
  EXPECT_EQ(h.transports[0]->stats().retransmissions, retrans)
      << "acked messages must not be retransmitted";
}

TEST(CoRfifo, PartitionThenHealDeliversEverything) {
  Harness h(2);
  h.set_reliable(0, {1});
  h.network.partition({{h.nodes[0]}, {h.nodes[1]}});
  for (std::uint64_t i = 1; i <= 5; ++i) h.send(0, {1}, i);
  h.sim.run_until(200 * sim::kMillisecond);
  EXPECT_TRUE(h.received[1].empty());
  h.network.heal();
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received[1].size(), 5u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(h.received[1][i - 1].second, i);
  }
}

TEST(CoRfifo, ByteAccountingIncludesHeaders) {
  Harness h(2);
  h.set_reliable(0, {1});
  h.send(0, {1}, 1);
  h.sim.run_to_quiescence();
  EXPECT_GE(h.transports[0]->stats().bytes_sent, 8u + kPacketHeaderBytes);
  EXPECT_GE(h.transports[1]->stats().acks_sent, 1u);
}

TEST(CoRfifo, LoopbackCountsBytesLikeARemoteSend) {
  // Regression: self-addressed copies used to increment messages_sent but
  // never bytes_sent, under-counting every sync-traffic byte table.
  Harness h(1);
  h.send(0, {0}, 1);
  h.sim.run_to_quiescence();
  const auto& stats = h.transports[0]->stats();
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_EQ(stats.messages_delivered, 1u);
  EXPECT_EQ(stats.bytes_sent, 8u + kPacketHeaderBytes);
  EXPECT_EQ(stats.loopbacks_dropped, 0u);
}

TEST(CoRfifo, BatchingCoalescesSameInstantSends) {
  // Ten same-instant sends to one peer share a single wire frame: one frame
  // header amortized over ten entries instead of ten packet headers.
  Harness h(2);
  h.set_reliable(0, {1});
  for (std::uint64_t i = 1; i <= 10; ++i) h.send(0, {1}, i);
  h.sim.run_to_quiescence();
  const auto& tx = h.transports[0]->stats();
  ASSERT_EQ(h.received[1].size(), 10u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(h.received[1][i - 1].second, i);
  }
  EXPECT_EQ(tx.frames_sent, 1u) << "ten messages must share one frame";
  EXPECT_EQ(tx.entries_sent, 10u);
  EXPECT_EQ(tx.bytes_sent,
            wire::kFrameHeaderBytes + 10 * (8 + wire::kFrameEntryBytes))
      << "per-frame cost charged once, per-entry cost per message";
}

TEST(CoRfifo, MaxBatchSplitsLargeBursts) {
  Harness h(2);
  h.set_reliable(0, {1});
  for (std::uint64_t i = 1; i <= 100; ++i) h.send(0, {1}, i);
  h.sim.run_to_quiescence();
  ASSERT_EQ(h.received[1].size(), 100u);
  // Default max_batch = 64: the burst needs exactly two data frames.
  EXPECT_EQ(h.transports[0]->stats().frames_sent, 2u);
  EXPECT_EQ(h.transports[0]->stats().entries_sent, 100u);
}

TEST(CoRfifo, BatchingOffSendsOneFramePerMessage) {
  sim::Simulator sim;
  net::Network network(sim, Rng(1), {});
  CoRfifoTransport::Config tcfg;
  tcfg.batching = false;
  CoRfifoTransport a(sim, network, net::NodeId{1}, tcfg);
  CoRfifoTransport b(sim, network, net::NodeId{2}, tcfg);
  a.set_reliable({net::NodeId{2}});
  std::vector<std::uint64_t> rx;
  b.set_deliver_handler([&rx](net::NodeId, const std::any& payload) {
    rx.push_back(std::any_cast<std::uint64_t>(payload));
  });
  for (std::uint64_t i = 1; i <= 10; ++i) a.send({net::NodeId{2}}, i, 8);
  sim.run_to_quiescence();
  ASSERT_EQ(rx.size(), 10u);
  EXPECT_EQ(a.stats().frames_sent, 10u);
  EXPECT_EQ(b.stats().acks_sent, 10u) << "legacy mode: one ack per frame";
  EXPECT_EQ(b.stats().acks_piggybacked, 0u);
}

TEST(CoRfifo, PiggybackedAckSuppressesStandaloneAck) {
  // b replies synchronously from its delivery handler, so b's data frame
  // (flushed in the same sim instant) carries the cumulative ack and the
  // standalone ack frame never goes out.
  sim::Simulator sim;
  net::Network network(sim, Rng(1), {});
  CoRfifoTransport a(sim, network, net::NodeId{1});
  CoRfifoTransport b(sim, network, net::NodeId{2});
  a.set_reliable({net::NodeId{2}});
  b.set_reliable({net::NodeId{1}});
  std::vector<std::uint64_t> at_a, at_b;
  b.set_deliver_handler([&](net::NodeId, const std::any& payload) {
    const auto uid = std::any_cast<std::uint64_t>(payload);
    at_b.push_back(uid);
    b.send({net::NodeId{1}}, uid + 100, 8);
  });
  a.set_deliver_handler([&](net::NodeId, const std::any& payload) {
    at_a.push_back(std::any_cast<std::uint64_t>(payload));
  });
  a.send({net::NodeId{2}}, std::uint64_t{1}, 8);
  sim.run_to_quiescence();
  EXPECT_EQ(at_b, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(at_a, (std::vector<std::uint64_t>{101}));
  EXPECT_GE(b.stats().acks_piggybacked, 1u);
  EXPECT_EQ(b.stats().acks_sent, 0u)
      << "the reply frame's piggybacked ack replaces the standalone ack";
  // a has no reverse traffic, so its ack for the reply is standalone.
  EXPECT_GE(a.stats().acks_sent, 1u);
}

TEST(CoRfifo, LoopbackAcrossOwnCrashIsACountedDrop) {
  Harness h(1);
  h.send(0, {0}, 1);
  h.transports[0]->crash();  // loopback still in flight
  h.sim.run_to_quiescence();
  const auto& stats = h.transports[0]->stats();
  EXPECT_TRUE(h.received[0].empty());
  EXPECT_EQ(stats.messages_delivered, 0u);
  EXPECT_EQ(stats.loopbacks_dropped, 1u)
      << "a loopback lost to our own crash must be counted, not vanish";
  EXPECT_EQ(stats.bytes_sent, 8u + kPacketHeaderBytes)
      << "bytes were put on the (virtual) wire before the crash";
}

}  // namespace
}  // namespace vsgc::transport
