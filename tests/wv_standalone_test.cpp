// The paper constructs its algorithm incrementally (Section 5): WV_RFIFO
// alone already satisfies WV_RFIFO:SPEC and Property 4.2. These tests run
// the BASE automaton standalone (no virtual synchrony, no blocking) against
// the WV checker, mirroring the paper's Section 5.1 argument.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gcs/wv_rfifo_endpoint.hpp"
#include "membership/oracle.hpp"
#include "net/network.hpp"
#include "spec/liveness_checker.hpp"
#include "spec/wv_rfifo_checker.hpp"

namespace vsgc::gcs {
namespace {

class Recorder : public Client {
 public:
  void deliver(ProcessId from, const AppMsg& m) override {
    deliveries.push_back({from, m});
  }
  void view(const View& v, const std::set<ProcessId>&) override {
    views.push_back(v);
  }
  void block() override {}

  std::vector<std::pair<ProcessId, AppMsg>> deliveries;
  std::vector<View> views;
};

struct WvWorld {
  explicit WvWorld(int n) : network(sim, Rng(1)) {
    trace.set_recording(true);
    trace.subscribe(checker);
    for (int i = 0; i < n; ++i) {
      const ProcessId p{static_cast<std::uint32_t>(i + 1)};
      transports.push_back(std::make_unique<transport::CoRfifoTransport>(
          sim, network, net::node_of(p)));
      endpoints.push_back(std::make_unique<WvRfifoEndpoint>(
          sim, *transports.back(), p, &trace));
      clients.push_back(std::make_unique<Recorder>());
      endpoints.back()->set_client(*clients.back());
      auto* ep = endpoints.back().get();
      transports.back()->set_deliver_handler(
          [ep](net::NodeId from, const std::any& payload) {
            ep->on_co_rfifo_deliver(net::process_of(from), payload);
          });
      oracle.attach(p, *ep);
    }
  }

  std::set<ProcessId> all() const {
    std::set<ProcessId> out;
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      out.insert(ProcessId{static_cast<std::uint32_t>(i + 1)});
    }
    return out;
  }

  sim::Simulator sim;
  net::Network network;
  spec::TraceBus trace;
  spec::WvRfifoChecker checker;
  membership::OracleMembership oracle;
  std::vector<std::unique_ptr<transport::CoRfifoTransport>> transports;
  std::vector<std::unique_ptr<WvRfifoEndpoint>> endpoints;
  std::vector<std::unique_ptr<Recorder>> clients;
};

TEST(WvStandalone, ViewsInstallWithoutSynchronizationMessages) {
  WvWorld w(3);
  // WV alone does not wait for sync messages: the membership view installs
  // as soon as it arrives (view_gate of the base automaton is vacuous).
  w.oracle.start_change(w.all());
  w.oracle.deliver_view(w.all());
  for (auto& ep : w.endpoints) {
    EXPECT_EQ(ep->current_view().members, w.all());
  }
}

TEST(WvStandalone, WithinViewFifoDeliveryHolds) {
  WvWorld w(3);
  w.oracle.start_change(w.all());
  w.oracle.deliver_view(w.all());
  for (int k = 0; k < 10; ++k) {
    w.endpoints[0]->send("a" + std::to_string(k));
  }
  w.sim.run_to_quiescence();
  for (int i = 0; i < 3; ++i) {
    const auto& d = w.clients[static_cast<std::size_t>(i)]->deliveries;
    ASSERT_EQ(d.size(), 10u) << "endpoint " << i;
    for (int k = 0; k < 10; ++k) {
      EXPECT_EQ(d[static_cast<std::size_t>(k)].second.payload,
                "a" + std::to_string(k));
    }
  }
  EXPECT_TRUE(spec::LivenessChecker::check(w.trace.recorded()));
}

TEST(WvStandalone, MessagesNeverCrossViewBoundaries) {
  WvWorld w(2);
  w.oracle.start_change(w.all());
  w.oracle.deliver_view(w.all());
  w.endpoints[0]->send("in-view-1");
  w.sim.run_to_quiescence();
  // Move on; messages sent in view 1 but arriving later must not be
  // delivered in view 2 (the WV checker enforces it; counts confirm).
  w.oracle.start_change(w.all());
  w.oracle.deliver_view(w.all());
  w.sim.run_to_quiescence();
  w.endpoints[1]->send("in-view-2");
  w.sim.run_to_quiescence();
  const auto& d = w.clients[0]->deliveries;
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].second.payload, "in-view-1");
  EXPECT_EQ(d[1].second.payload, "in-view-2");
}

TEST(WvStandalone, SelfDeliveryOnlyAfterMulticast) {
  // The base automaton's (q = p) => last_dlvrd < last_sent precondition:
  // an end-point cannot self-deliver before co_rfifo.send happened. Since
  // both occur inside one pump, we observe the effect: self-delivery works
  // and the message is on the wire to peers.
  WvWorld w(2);
  w.oracle.start_change(w.all());
  w.oracle.deliver_view(w.all());
  w.endpoints[0]->send("x");
  w.sim.run_to_quiescence();
  EXPECT_EQ(w.clients[0]->deliveries.size(), 1u);
  EXPECT_EQ(w.clients[1]->deliveries.size(), 1u);
  EXPECT_GE(w.transports[0]->stats().messages_sent, 1u);
}

TEST(WvStandalone, NoObsoleteViewSkippingInBase) {
  // Unlike the VS child, the base automaton installs every membership view
  // (its only precondition is monotonicity) — the obsolete-view skipping is
  // genuinely a property of the Figure 10 extension.
  WvWorld w(2);
  w.oracle.start_change(w.all());
  w.oracle.deliver_view(w.all());
  w.oracle.start_change(w.all());
  w.oracle.deliver_view(w.all());
  w.sim.run_to_quiescence();
  EXPECT_EQ(w.clients[0]->views.size(), 2u);
}

}  // namespace
}  // namespace vsgc::gcs
