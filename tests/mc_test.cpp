// Tests for the model-checking subsystem: the controllable-nondeterminism
// seams (sim tie-breaks, network loss/jitter), the recording controllers,
// ScheduleScript JSON, and the bounded explorer end to end (planted-bug
// search, schedule minimization, byte-identical replay).
#include <gtest/gtest.h>

#include <any>
#include <sstream>
#include <string>
#include <vector>

#include "mc/controller.hpp"
#include "mc/explorer.hpp"
#include "mc/schedule_script.hpp"
#include "net/network.hpp"
#include "obs/json.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/simulator.hpp"

namespace vsgc::mc {
namespace {

std::string render(const std::vector<spec::Event>& trace) {
  std::ostringstream os;
  obs::write_jsonl(trace, os);
  return os.str();
}

/// Builds a forced-pick controller; disambiguates the vector constructor
/// from brace-init of a ScheduleScript.
ScriptController forced(std::vector<std::uint32_t> picks) {
  return ScriptController(std::move(picks));
}

// ---------------------------------------------------------------------------
// Simulator tie-break seam
// ---------------------------------------------------------------------------

std::vector<int> run_three_equal_events(ScriptController& ctl) {
  sim::Simulator sim;
  sim.set_nondet(&ctl);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run_to_quiescence();
  return order;
}

TEST(SimTiebreakSeam, DefaultPicksKeepInsertionOrder) {
  ScriptController ctl;  // empty vector: every pick defaults to 0
  EXPECT_EQ(run_three_equal_events(ctl), (std::vector<int>{0, 1, 2}));
  // Two choice points: one among 3 events, then one among the remaining 2.
  ASSERT_EQ(ctl.consumed(), 2u);
  EXPECT_EQ(ctl.trace()[0].kind, "sim.tiebreak");
  EXPECT_EQ(ctl.trace()[0].n, 3u);
  EXPECT_EQ(ctl.trace()[1].n, 2u);
}

TEST(SimTiebreakSeam, ForcedPickReordersEqualTimestamps) {
  ScriptController ctl = forced({2});
  // Pick 2 fires the last-inserted event first; the rest keep their order.
  EXPECT_EQ(run_three_equal_events(ctl), (std::vector<int>{2, 0, 1}));
}

TEST(SimTiebreakSeam, DistinctTimestampsAreNotChoicePoints) {
  sim::Simulator sim;
  ScriptController ctl;
  sim.set_nondet(&ctl);
  for (int i = 0; i < 3; ++i) sim.schedule(10 * (i + 1), [] {});
  sim.run_to_quiescence();
  EXPECT_EQ(ctl.consumed(), 0u);
}

TEST(SimTiebreakSeam, DetachRestoresUncontrolledBehavior) {
  sim::Simulator sim;
  ScriptController ctl = forced({1});
  sim.set_nondet(&ctl);
  sim.set_nondet(nullptr);
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run_to_quiescence();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(ctl.consumed(), 0u);
}

// ---------------------------------------------------------------------------
// Network loss/jitter seam
// ---------------------------------------------------------------------------

struct NetHarness {
  explicit NetHarness(net::Network::Config cfg)
      : network(sim, Rng(1), cfg) {
    network.attach(net::NodeId{2},
                   [this](net::NodeId, const std::any&) { ++delivered; });
  }
  sim::Simulator sim;
  net::Network network;
  int delivered = 0;
};

TEST(NetworkSeam, DropChoiceControlsPacketLoss) {
  net::Network::Config cfg;
  cfg.drop_probability = 0.5;  // nonzero: every send is a "net.drop" choice
  cfg.jitter = 0;
  NetHarness h(cfg);
  ScriptController ctl = forced({1, 0});  // first packet dropped, second delivered
  h.network.set_nondet(&ctl);
  h.network.send(net::NodeId{1}, net::NodeId{2}, std::string("a"), 1);
  h.network.send(net::NodeId{1}, net::NodeId{2}, std::string("b"), 1);
  h.sim.run_to_quiescence();
  EXPECT_EQ(h.delivered, 1);
  EXPECT_EQ(h.network.stats().packets_dropped, 1u);
  ASSERT_EQ(ctl.consumed(), 2u);
  EXPECT_EQ(ctl.trace()[0].kind, "net.drop");
}

TEST(NetworkSeam, JitterChoiceSelectsBoundaryDelays) {
  net::Network::Config cfg;
  cfg.base_latency = 1 * sim::kMillisecond;
  cfg.jitter = 900;
  NetHarness h(cfg);
  sim::Time arrival = 0;
  h.network.attach(net::NodeId{3}, [&](net::NodeId, const std::any&) {
    arrival = h.sim.now();
  });
  ScriptController ctl = forced({1});  // maximum jitter
  h.network.set_nondet(&ctl);
  h.network.send(net::NodeId{1}, net::NodeId{3}, std::string("x"), 1);
  h.sim.run_to_quiescence();
  EXPECT_EQ(arrival, 1 * sim::kMillisecond + 900);
  ASSERT_EQ(ctl.consumed(), 1u);
  EXPECT_EQ(ctl.trace()[0].kind, "net.jitter");

  // Default pick: minimum delay.
  ScriptController ctl2;
  h.network.set_nondet(&ctl2);
  h.network.send(net::NodeId{1}, net::NodeId{3}, std::string("y"), 1);
  const sim::Time sent_at = h.sim.now();
  h.sim.run_to_quiescence();
  EXPECT_EQ(arrival, sent_at + 1 * sim::kMillisecond);
}

TEST(NetworkSeam, ZeroDropProbabilityConsultsNoDropChoice) {
  net::Network::Config cfg;
  cfg.jitter = 0;
  NetHarness h(cfg);
  ScriptController ctl = forced({1, 1, 1});
  h.network.set_nondet(&ctl);
  h.network.send(net::NodeId{1}, net::NodeId{2}, std::string("x"), 1);
  h.sim.run_to_quiescence();
  EXPECT_EQ(h.delivered, 1);
  EXPECT_EQ(ctl.consumed(), 0u) << "no loss or jitter: nothing to choose";
}

// ---------------------------------------------------------------------------
// Controllers and ScheduleScript
// ---------------------------------------------------------------------------

TEST(Controllers, SingleAlternativeIsNotRecorded) {
  ScriptController ctl = forced({1, 1});
  EXPECT_EQ(ctl.choose("x", 1), 0u);
  EXPECT_EQ(ctl.consumed(), 0u);
  EXPECT_EQ(ctl.choose("x", 2), 1u);
  EXPECT_EQ(ctl.consumed(), 1u);
}

TEST(Controllers, OutOfRangePicksClampToLastAlternative) {
  ScriptController ctl = forced({7});
  EXPECT_EQ(ctl.choose("x", 3), 2u);
  // The clamped value is what gets recorded — replaying the recorded script
  // reproduces the run even though the requested pick was invalid.
  EXPECT_EQ(ctl.trace()[0].pick, 2u);
}

TEST(Controllers, RandomControllerIsDeterministicPerSeed) {
  std::vector<std::uint32_t> a, b;
  for (int round = 0; round < 2; ++round) {
    RandomController ctl(42);
    for (int i = 0; i < 16; ++i) ctl.choose("x", 5);
    for (const Choice& c : ctl.trace()) {
      (round == 0 ? a : b).push_back(c.pick);
    }
  }
  EXPECT_EQ(a, b);
}

TEST(ScheduleScriptJson, RoundTripsThroughJson) {
  ScheduleScript script;
  script.seed = 99;
  script.choices = {{"sim.tiebreak", 3, 1}, {"net.drop", 2, 0},
                    {"mc.fault", 8, 7}};
  EXPECT_EQ(script.deviations(), 2u);
  EXPECT_EQ(script.picks(), (std::vector<std::uint32_t>{1, 0, 7}));

  std::ostringstream os;
  script.to_json().write_pretty(os);
  std::string error;
  const obs::JsonValue parsed = obs::JsonValue::parse(os.str(), &error);
  ASSERT_TRUE(error.empty()) << error;
  ScheduleScript back;
  ASSERT_TRUE(ScheduleScript::from_json(parsed, &back));
  EXPECT_EQ(back.seed, 99u);
  EXPECT_EQ(back.choices, script.choices);
}

TEST(ScheduleScriptJson, RejectsMalformedDocuments) {
  ScheduleScript out;
  std::string error;
  EXPECT_FALSE(ScheduleScript::from_json(
      obs::JsonValue::parse("[1,2]", &error), &out));
  EXPECT_FALSE(ScheduleScript::from_json(
      obs::JsonValue::parse(R"({"choices": []})", &error), &out));
  EXPECT_FALSE(ScheduleScript::from_json(
      obs::JsonValue::parse(R"({"seed": 1, "choices": [{"kind": "x"}]})",
                            &error),
      &out));
}

// ---------------------------------------------------------------------------
// Scenario executions
// ---------------------------------------------------------------------------

ScenarioConfig tiny_scenario() {
  ScenarioConfig sc;
  sc.clients = 3;
  sc.messages = 2;
  return sc;
}

TEST(Scenario, DefaultScheduleRunsCleanAndIsReplayable) {
  const ScenarioConfig sc = tiny_scenario();
  const RunResult a = run_scenario(sc, {});
  EXPECT_FALSE(a.violation) << a.what;
  EXPECT_GT(a.script.choices.size(), 0u) << "view change must hit tie-breaks";
  EXPECT_EQ(a.script.deviations(), 0u);

  const RunResult b = run_scenario(sc, {});
  EXPECT_EQ(render(a.trace), render(b.trace)) << "must be byte-identical";
  EXPECT_EQ(a.script.choices, b.script.choices);
}

TEST(Scenario, ForcedDeviationReplaysByteIdentically) {
  const ScenarioConfig sc = tiny_scenario();
  const RunResult base = run_scenario(sc, {});
  ASSERT_GT(base.script.choices.size(), 0u);
  // Deviate at the first choice point, then replay the recorded script.
  const RunResult dev = run_scenario(sc, {1});
  EXPECT_FALSE(dev.violation) << dev.what;
  const RunResult replay = run_scenario(sc, dev.script.picks());
  EXPECT_EQ(render(dev.trace), render(replay.trace));
}

TEST(Scenario, ClampedPicksCollapseToTheSameExecution) {
  // Pick 99 at a choice point with n alternatives clamps to n-1: the two
  // prefixes decode to identical consumed-choice sequences — the collision
  // the explorer's state-hash dedup collapses.
  const ScenarioConfig sc = tiny_scenario();
  const RunResult base = run_scenario(sc, {});
  ASSERT_GT(base.script.choices.size(), 0u);
  const std::uint32_t n = base.script.choices[0].n;
  const RunResult clamped = run_scenario(sc, {99});
  const RunResult last = run_scenario(sc, {n - 1});
  EXPECT_EQ(clamped.script.choices, last.script.choices);
  EXPECT_EQ(render(clamped.trace), render(last.trace));
}

TEST(Scenario, FaultSlotPicksInjectFromTheMenu) {
  ScenarioConfig sc = tiny_scenario();
  sc.fault_slots = 1;
  const std::vector<sim::FaultOp> menu = fault_menu(sc);
  ASSERT_EQ(menu.size(), 6u);  // 3 crashes + 3 one-way link-downs
  EXPECT_EQ(menu[0].kind, sim::FaultOp::Kind::kCrash);
  EXPECT_TRUE(menu[3].oneway);

  // Find the fault decision point in the default run and force a crash of
  // process 0 (menu slot 0 => pick 1). The run must survive: stabilize()
  // recovers the crash and liveness still holds.
  const RunResult base = run_scenario(sc, {});
  std::size_t fault_at = base.script.choices.size();
  for (std::size_t i = 0; i < base.script.choices.size(); ++i) {
    if (base.script.choices[i].kind == "mc.fault") {
      fault_at = i;
      break;
    }
  }
  ASSERT_LT(fault_at, base.script.choices.size());
  EXPECT_EQ(base.script.choices[fault_at].n, menu.size() + 1);

  std::vector<std::uint32_t> picks(fault_at, 0);
  picks.push_back(1);
  const RunResult crashed = run_scenario(sc, picks);
  EXPECT_FALSE(crashed.violation) << crashed.what;
  EXPECT_NE(render(crashed.trace), render(base.trace))
      << "the forced crash must be observable in the trace";
}

TEST(Scenario, CorruptionMenuExtendsTheFaultVocabulary) {
  ScenarioConfig sc = tiny_scenario();
  sc.fault_slots = 1;
  sc.corruption = true;
  const std::vector<sim::FaultOp> menu = fault_menu(sc);
  ASSERT_EQ(menu.size(), 11u);  // 6 base entries + 5 corruption kinds
  EXPECT_EQ(menu[6].kind, sim::FaultOp::Kind::kCorruptSeq);
  EXPECT_EQ(menu[7].kind, sim::FaultOp::Kind::kCorruptAck);
  EXPECT_EQ(menu[8].kind, sim::FaultOp::Kind::kCorruptReliable);
  EXPECT_EQ(menu[9].kind, sim::FaultOp::Kind::kCorruptView);
  EXPECT_EQ(menu[10].kind, sim::FaultOp::Kind::kCorruptBackoff);

  // The flag participates in the scenario JSON round-trip: a violation
  // bundle's scenario.json must rebuild the eventual-checker world.
  std::ostringstream os;
  sc.to_json().write_pretty(os);
  std::string error;
  const obs::JsonValue parsed = obs::JsonValue::parse(os.str(), &error);
  ASSERT_TRUE(error.empty()) << error;
  ScenarioConfig back;
  ASSERT_TRUE(ScenarioConfig::from_json(parsed, &back));
  EXPECT_TRUE(back.corruption);
}

TEST(Scenario, ForcedCorruptionPicksRecoverUnderTheEventualBundle) {
  ScenarioConfig sc = tiny_scenario();
  sc.fault_slots = 1;
  sc.corruption = true;
  const RunResult base = run_scenario(sc, {});
  EXPECT_FALSE(base.violation) << base.what;
  std::size_t fault_at = base.script.choices.size();
  for (std::size_t i = 0; i < base.script.choices.size(); ++i) {
    if (base.script.choices[i].kind == "mc.fault") {
      fault_at = i;
      break;
    }
  }
  ASSERT_LT(fault_at, base.script.choices.size());
  ASSERT_EQ(base.script.choices[fault_at].n, 12u);  // none + 11 menu entries

  // Force each recoverable corruption (menu slots 6..10 => picks 7..11): the
  // stack's detection + recovery paths must reconverge inside the tolerance
  // window, so none of them reads as a violation.
  for (std::uint32_t pick = 7; pick <= 11; ++pick) {
    std::vector<std::uint32_t> picks(fault_at, 0);
    picks.push_back(pick);
    const RunResult r = run_scenario(sc, picks);
    EXPECT_FALSE(r.violation) << "pick " << pick << ": " << r.what;
  }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

TEST(Explorer, ExhaustsTheFrontierWithinTheBound) {
  ExploreConfig xc;
  xc.max_deviations = 1;
  xc.max_runs = 500;
  xc.horizon = 12;  // keep the frontier small: branch on early points only
  Explorer explorer(tiny_scenario(), xc);
  EXPECT_FALSE(explorer.explore().has_value());
  const ExploreStats& stats = explorer.stats();
  EXPECT_TRUE(stats.frontier_exhausted);
  EXPECT_FALSE(stats.budget_exhausted);
  EXPECT_EQ(stats.depth_completed, 1);
  EXPECT_EQ(stats.violations, 0u);
  ASSERT_EQ(stats.levels.size(), 2u);
  EXPECT_EQ(stats.levels[0].runs, 1u);
  EXPECT_EQ(stats.levels[1].runs, stats.levels[0].enqueued);
  EXPECT_EQ(stats.runs, stats.levels[0].runs + stats.levels[1].runs);
  EXPECT_GT(stats.unique_traces, 1u) << "deviations must change schedules";
  EXPECT_GT(stats.sim_stats.events_executed, 0u);
}

TEST(Explorer, BudgetCutsExplorationShort) {
  ExploreConfig xc;
  xc.max_deviations = 2;
  xc.max_runs = 5;
  Explorer explorer(tiny_scenario(), xc);
  EXPECT_FALSE(explorer.explore().has_value());
  EXPECT_TRUE(explorer.stats().budget_exhausted);
  EXPECT_FALSE(explorer.stats().frontier_exhausted);
  EXPECT_EQ(explorer.stats().runs, 5u);
}

TEST(Explorer, FindsMinimizesAndReplaysThePlantedBug) {
  ScenarioConfig sc = tiny_scenario();
  sc.inject_bug = true;
  sc.fault_slots = 1;
  ExploreConfig xc;
  xc.max_deviations = 1;
  xc.max_runs = 500;
  Explorer explorer(sc, xc);
  const auto found = explorer.explore();
  ASSERT_TRUE(found.has_value()) << "the planted bug is one deviation away";
  EXPECT_TRUE(found->violation);
  EXPECT_NE(found->what.find("WV_RFIFO"), std::string::npos) << found->what;
  EXPECT_EQ(explorer.stats().violations, 1u);

  const std::vector<std::uint32_t> min =
      minimize_schedule(sc, found->script.picks());
  EXPECT_LE(min.size(), found->script.picks().size());
  const RunResult min_run = run_scenario(sc, min);
  EXPECT_TRUE(min_run.violation);
  EXPECT_EQ(min_run.script.deviations(), 1u)
      << "only the bug-menu pick should survive minimization";

  // The minimized schedule replays byte-identically.
  const RunResult replay = run_scenario(sc, min_run.script.picks());
  EXPECT_TRUE(replay.violation);
  EXPECT_EQ(replay.what, min_run.what);
  EXPECT_EQ(render(replay.trace), render(min_run.trace));
}

TEST(Explorer, FindsMinimizesAndReplaysThePlantedCorruptionWedge) {
  // The corruption twin of the planted-bug pipeline: with corruption and
  // inject_bug set, the menu's planted action is kBugCorruptWedge — an
  // unrecoverable view-epoch corruption that only the stabilize epilogue's
  // reconvergence check can flag (no exact checker fires in-window).
  ScenarioConfig sc = tiny_scenario();
  sc.corruption = true;
  sc.inject_bug = true;
  sc.fault_slots = 1;
  ExploreConfig xc;
  xc.max_deviations = 1;
  xc.max_runs = 500;
  Explorer explorer(sc, xc);
  const auto found = explorer.explore();
  ASSERT_TRUE(found.has_value()) << "the planted wedge is one deviation away";
  EXPECT_TRUE(found->violation);
  EXPECT_NE(found->what.find("liveness"), std::string::npos) << found->what;

  const std::vector<std::uint32_t> min =
      minimize_schedule(sc, found->script.picks());
  const RunResult min_run = run_scenario(sc, min);
  EXPECT_TRUE(min_run.violation);
  EXPECT_EQ(min_run.script.deviations(), 1u)
      << "only the wedge injection should survive minimization";

  // Minimizer probes and the final replay are judged under the same
  // eventual-safety window as the finding run, so the minimized schedule
  // replays byte-identically with the identical violation.
  const RunResult replay = run_scenario(sc, min_run.script.picks());
  EXPECT_TRUE(replay.violation);
  EXPECT_EQ(replay.what, min_run.what);
  EXPECT_EQ(render(replay.trace), render(min_run.trace));
}

TEST(Explorer, RandomWalkRecordsReplayableScripts) {
  ScenarioConfig sc = tiny_scenario();
  ExploreConfig xc;
  xc.max_runs = 500;
  Explorer explorer(sc, xc);
  EXPECT_FALSE(explorer.random_walk(0, 3).has_value());
  EXPECT_EQ(explorer.stats().runs, 4u);

  // A walk's recorded script replays to the same execution.
  RandomController ctl(2);
  const RunResult walk = run_scenario(sc, ctl);
  const RunResult replay = run_scenario(sc, walk.script.picks());
  EXPECT_EQ(render(walk.trace), render(replay.trace));
}

}  // namespace
}  // namespace vsgc::mc
