// Section 8 tests: crash and recovery of end-points without stable storage.
#include <gtest/gtest.h>

#include "app/world.hpp"
#include "helpers/oracle_world.hpp"
#include "spec/liveness_checker.hpp"

namespace vsgc {
namespace {

using testing::OracleWorld;

TEST(CrashRecovery, CrashedEndpointIgnoresAllInputs) {
  OracleWorld w(2);
  w.change_view(w.all());
  w.ep(0).crash();
  EXPECT_TRUE(w.ep(0).crashed());
  const auto sent_before = w.ep(0).stats().sent;
  w.client(0).send("ignored");
  w.settle();
  EXPECT_EQ(w.ep(0).stats().sent, sent_before);
  // Views are also ignored while crashed.
  w.oracle.start_change_to(w.pid(1), {w.pid(1)});
  const View v = w.oracle.make_view({w.pid(1)});
  w.oracle.deliver_view_to(w.pid(1), v);
  w.settle();
  EXPECT_NE(w.ep(0).current_view().members, std::set<ProcessId>{w.pid(1)});
}

TEST(CrashRecovery, RecoveryResetsToInitialSingletonView) {
  OracleWorld w(2);
  w.change_view(w.all());
  EXPECT_EQ(w.ep(0).current_view().members.size(), 2u);
  w.ep(0).crash();
  w.transport(0).crash();
  w.sim.run_until(w.sim.now() + sim::kMillisecond);
  w.transport(0).recover();
  w.ep(0).recover();
  EXPECT_FALSE(w.ep(0).crashed());
  EXPECT_EQ(w.ep(0).current_view(), View::initial(w.pid(0)));
}

TEST(CrashRecovery, RecoveredEndpointCanOperateInSingletonView) {
  OracleWorld w(2);
  w.change_view(w.all());
  w.ep(0).crash();
  w.transport(0).crash();
  w.sim.run_until(w.sim.now() + sim::kMillisecond);
  w.transport(0).recover();
  w.ep(0).recover();
  int rx = 0;
  w.client(0).on_deliver([&rx](ProcessId, const gcs::AppMsg&) { ++rx; });
  w.client(0).send("local");
  w.settle();
  EXPECT_EQ(rx, 1) << "self-delivery must work in the post-recovery view";
  w.checkers.finalize();
}

TEST(CrashRecovery, LocalMonotonicityHeldAcrossRecovery) {
  // The WV checker's monotonicity floor enforces that post-recovery GCS
  // views still exceed every pre-crash view id (the membership keeps state).
  OracleWorld w(2);
  w.change_view(w.all());
  w.change_view(w.all());
  w.ep(0).crash();
  w.transport(0).crash();
  w.sim.run_until(w.sim.now() + sim::kMillisecond);
  w.transport(0).recover();
  w.ep(0).recover();
  // The oracle retained its per-process cids/epochs, so the next view has a
  // higher id; the checker would throw otherwise.
  w.change_view(w.all());
  w.settle();
  EXPECT_EQ(w.ep(0).current_view().members, w.all());
  w.checkers.finalize();
}

TEST(CrashRecovery, FullStackCrashStormEventuallyConverges) {
  app::WorldConfig cfg;
  cfg.num_clients = 4;
  cfg.num_servers = 2;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 8 * sim::kSecond));

  // Crash half the group, let the survivors reconfigure, then recover.
  w.process(1).crash();
  w.process(3).crash();
  w.run_for(5 * sim::kSecond);
  w.process(1).recover();
  w.run_for(3 * sim::kSecond);
  w.process(3).recover();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 20 * sim::kSecond));

  std::vector<int> rx(4, 0);
  for (int i = 0; i < 4; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.client(3).send("back");
  w.run_for(2 * sim::kSecond);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rx[static_cast<std::size_t>(i)], 1);
  w.checkers().finalize();
  EXPECT_TRUE(spec::LivenessChecker::check(w.trace().recorded()));
}

TEST(CrashRecovery, RepeatedCrashRecoverCyclesStaySafe) {
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 5 * sim::kSecond));
  for (int cycle = 0; cycle < 3; ++cycle) {
    w.process(2).crash();
    w.run_for(4 * sim::kSecond);
    w.process(2).recover();
    ASSERT_TRUE(w.run_until_converged(w.all_members(), 15 * sim::kSecond))
        << "cycle " << cycle;
    w.client(2).send("alive-again");
    w.run_for(2 * sim::kSecond);
  }
  w.checkers().finalize();
}

}  // namespace
}  // namespace vsgc
