// Full-stack integration tests: real membership servers, failure detection,
// partitions, merges, crash/recovery — with the complete checker suite and
// the Property 4.2 liveness check on the recorded traces.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "app/world.hpp"
#include "spec/liveness_checker.hpp"

namespace vsgc {
namespace {

std::set<ProcessId> pids(std::initializer_list<std::uint32_t> ids) {
  std::set<ProcessId> out;
  for (auto i : ids) out.insert(ProcessId{i});
  return out;
}

TEST(Integration, MessagesFlowAfterConvergence) {
  app::WorldConfig cfg;
  cfg.num_clients = 4;
  app::World w(cfg);
  std::vector<int> rx(4, 0);
  for (int i = 0; i < 4; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 5 * sim::kSecond));
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 5; ++k) w.client(i).send("m");
  }
  w.run_for(2 * sim::kSecond);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rx[static_cast<std::size_t>(i)], 20);
  w.checkers().finalize();
  EXPECT_TRUE(spec::LivenessChecker::check(w.trace().recorded()));
}

TEST(Integration, CrashedProcessExcludedOthersContinue) {
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 5 * sim::kSecond));

  w.process(2).crash();
  ASSERT_TRUE(w.run_until_converged(pids({1, 2}), 10 * sim::kSecond))
      << "survivors must reconfigure to a 2-member view";

  std::vector<int> rx(2, 0);
  for (int i = 0; i < 2; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.client(0).send("after-crash");
  w.run_for(2 * sim::kSecond);
  EXPECT_EQ(rx[0], 1);
  EXPECT_EQ(rx[1], 1);
  w.checkers().finalize();
}

TEST(Integration, CrashRecoverRejoinsUnderOriginalIdentity) {
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 5 * sim::kSecond));

  w.process(1).crash();
  ASSERT_TRUE(w.run_until_converged(pids({1, 3}), 10 * sim::kSecond));

  // Section 8: recovery without stable storage, same identity.
  w.process(1).recover();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond))
      << "recovered process must rejoin under its original id";

  std::vector<int> rx(3, 0);
  for (int i = 0; i < 3; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.client(1).send("post-recovery");
  w.run_for(2 * sim::kSecond);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(rx[static_cast<std::size_t>(i)], 1);
  w.checkers().finalize();
  EXPECT_TRUE(spec::LivenessChecker::check(w.trace().recorded()));
}

TEST(Integration, TwoServerPartitionAndMerge) {
  app::WorldConfig cfg;
  cfg.num_clients = 4;
  cfg.num_servers = 2;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 8 * sim::kSecond));

  // Clients 1,3 attach to server 0; clients 2,4 to server 1 (round robin).
  w.network().partition(
      {{net::node_of(ServerId{0}), net::node_of(ProcessId{1}),
        net::node_of(ProcessId{3})},
       {net::node_of(ServerId{1}), net::node_of(ProcessId{2}),
        net::node_of(ProcessId{4})}});
  ASSERT_TRUE(w.run_until_converged(pids({1, 3}), 15 * sim::kSecond))
      << "component A must form its own view";
  ASSERT_TRUE(w.run_until_converged(pids({2, 4}), 15 * sim::kSecond))
      << "component B must form its own view";

  // Messages stay within components.
  std::vector<int> rx(4, 0);
  for (int i = 0; i < 4; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.client(0).send("in-A");
  w.run_for(2 * sim::kSecond);
  EXPECT_EQ(rx[0], 1);
  EXPECT_EQ(rx[2], 1);  // process 3 (index 2) is in component A
  EXPECT_EQ(rx[1], 0);
  EXPECT_EQ(rx[3], 0);

  w.network().heal();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 20 * sim::kSecond))
      << "healed components must merge into one view";
  w.checkers().finalize();
  EXPECT_TRUE(spec::LivenessChecker::check(w.trace().recorded()));
}

TEST(Integration, TransitionalSetsAtMergeReflectComponents) {
  app::WorldConfig cfg;
  cfg.num_clients = 4;
  cfg.num_servers = 2;
  app::World w(cfg);
  std::map<int, std::set<ProcessId>> last_t;
  for (int i = 0; i < 4; ++i) {
    w.client(i).on_view(
        [&last_t, i](const View&, const std::set<ProcessId>& t) {
          last_t[i] = t;
        });
  }
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 8 * sim::kSecond));
  w.network().partition(
      {{net::node_of(ServerId{0}), net::node_of(ProcessId{1}),
        net::node_of(ProcessId{3})},
       {net::node_of(ServerId{1}), net::node_of(ProcessId{2}),
        net::node_of(ProcessId{4})}});
  ASSERT_TRUE(w.run_until_converged(pids({1, 3}), 15 * sim::kSecond));
  ASSERT_TRUE(w.run_until_converged(pids({2, 4}), 15 * sim::kSecond));
  w.network().heal();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 20 * sim::kSecond));
  // After the merge, each member's transitional set is its old component.
  EXPECT_EQ(last_t[0], pids({1, 3}));
  EXPECT_EQ(last_t[2], pids({1, 3}));
  EXPECT_EQ(last_t[1], pids({2, 4}));
  EXPECT_EQ(last_t[3], pids({2, 4}));
  w.checkers().finalize();
}

TEST(Integration, VirtualSynchronyAcrossForcedExclusion) {
  // A client partitioned from everyone keeps its old view; survivors agree
  // on a cut and move on; after healing, everyone reconverges.
  app::WorldConfig cfg;
  cfg.num_clients = 3;
  app::World w(cfg);
  std::vector<int> rx(3, 0);
  for (int i = 0; i < 3; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 5 * sim::kSecond));

  // Burst of traffic, then partition p3 away mid-stream.
  for (int k = 0; k < 10; ++k) w.client(0).send("x");
  w.network().partition(
      {{net::node_of(ServerId{0}), net::node_of(ProcessId{1}),
        net::node_of(ProcessId{2})},
       {net::node_of(ProcessId{3})}});
  ASSERT_TRUE(w.run_until_converged(pids({1, 2}), 15 * sim::kSecond));
  EXPECT_EQ(rx[0], rx[1]) << "survivors must agree on delivered prefix";

  w.network().heal();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 20 * sim::kSecond));
  w.checkers().finalize();
  EXPECT_TRUE(spec::LivenessChecker::check(w.trace().recorded()));
}

TEST(Integration, MultiServerScalesToManyClients) {
  app::WorldConfig cfg;
  cfg.num_clients = 12;
  cfg.num_servers = 3;
  app::World w(cfg);
  w.start();
  ASSERT_TRUE(w.run_until_converged(w.all_members(), 10 * sim::kSecond));
  std::vector<int> rx(12, 0);
  for (int i = 0; i < 12; ++i) {
    w.client(i).on_deliver(
        [&rx, i](ProcessId, const gcs::AppMsg&) { ++rx[static_cast<std::size_t>(i)]; });
  }
  w.client(5).send("fan-out");
  w.run_for(2 * sim::kSecond);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(rx[static_cast<std::size_t>(i)], 1);
  w.checkers().finalize();
  EXPECT_TRUE(spec::LivenessChecker::check(w.trace().recorded()));
}

}  // namespace
}  // namespace vsgc
