#!/usr/bin/env bash
# CI entry point: sanitized debug build, full test suite, then one bench run
# whose BENCH_*.json artifact is schema-checked. Mirrors what a reviewer
# should run before merging.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (Debug + ASan/UBSan + VSGC_WERROR=ON) =="
# VSGC_WERROR=ON makes the build stage below a -Werror gate on the whole tree.
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DVSGC_WERROR=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

echo "== static analysis =="
# Runs BEFORE the full build so determinism/hygiene violations are reported
# even when the tree itself would fail to compile. Only the linter and the
# artifact validator are built here.
cmake --build "$BUILD_DIR" -j "$JOBS" --target vsgc_lint_tool validate_bench_json
ARTIFACT_DIR="$BUILD_DIR/artifacts"
mkdir -p "$ARTIFACT_DIR"
"$BUILD_DIR/tools/vsgc_lint" --root . --json "$ARTIFACT_DIR/LINT_vsgc.json"
"$BUILD_DIR/tools/validate_bench_json" "$ARTIFACT_DIR/LINT_vsgc.json"

echo "== static analysis self-check (planted violation) =="
# A deliberately planted determinism violation must fail the lint gate —
# mirrors the planted-bug self-checks of vsgc_stress and vsgc_mc.
LINT_PLANT="$BUILD_DIR/lint-selfcheck"
rm -rf "$LINT_PLANT"
mkdir -p "$LINT_PLANT/src/sim"
printf 'int planted() { return std::rand(); }\n' \
  > "$LINT_PLANT/src/sim/planted.cpp"
if "$BUILD_DIR/tools/vsgc_lint" --root "$LINT_PLANT" > /dev/null; then
  echo "vsgc_lint failed to flag a planted std::rand violation" >&2
  exit 1
fi
echo "planted violation caught by vsgc_lint"

# clang-tidy half of the gate; skips with a notice when not installed.
tools/run_clang_tidy.sh "$BUILD_DIR"

echo "== build (with -Werror) =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test: unit =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L unit

echo "== test: property =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L property

echo "== test: mc =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L mc

echo "== bench smoke + artifact validation =="
ARTIFACT_DIR="$BUILD_DIR/artifacts"
mkdir -p "$ARTIFACT_DIR"
VSGC_BENCH_OUT="$ARTIFACT_DIR" "$BUILD_DIR/bench/bench_view_change"
"$BUILD_DIR/tools/validate_bench_json" "$ARTIFACT_DIR"/BENCH_*.json

echo "== trace determinism =="
# Same binary, same seed: the JSONL trace must be byte-identical.
ARTIFACT_DIR2="$BUILD_DIR/artifacts2"
mkdir -p "$ARTIFACT_DIR2"
VSGC_BENCH_OUT="$ARTIFACT_DIR2" "$BUILD_DIR/bench/bench_view_change" > /dev/null
cmp "$ARTIFACT_DIR/TRACE_view_change.jsonl" "$ARTIFACT_DIR2/TRACE_view_change.jsonl"
echo "TRACE_view_change.jsonl byte-identical across runs"

echo "== stress fuzz smoke (sanitized) =="
# Fixed seed block, small world, full checker suite: any violation fails CI
# and the repro bundle path is printed by the tool itself.
STRESS_OUT="$BUILD_DIR/stress-out"
rm -rf "$STRESS_OUT"
if ! "$BUILD_DIR/tools/vsgc_stress" --seeds 0:24 --clients 4 --servers 2 \
    --steps 15 --out "$STRESS_OUT"; then
  echo "vsgc_stress found a violation; repro bundles under $STRESS_OUT" >&2
  exit 1
fi

echo "== stress pipeline self-check (planted bug) =="
# A deliberately injected endpoint bug must be caught by the checkers,
# minimized, and the minimized bundle must replay to the same violation.
PLANT_OUT="$BUILD_DIR/stress-selfcheck"
rm -rf "$PLANT_OUT"
"$BUILD_DIR/tools/vsgc_stress" --seeds 3:3 --inject-bug 10 \
  --expect-violation --out "$PLANT_OUT" > /dev/null
"$BUILD_DIR/tools/vsgc_stress" --replay "$PLANT_OUT/seed3" --expect-violation \
  > /dev/null
echo "planted bug caught, minimized, and replayed"

echo "== model checker: exhaustive exploration + artifact =="
# Bounded exploration of the 3-process view-change scenario must exhaust the
# frontier within the deviation bound and emit a schema-valid BENCH_mc.json.
MC_OUT="$BUILD_DIR/mc-out"
rm -rf "$MC_OUT"
mkdir -p "$MC_OUT"
VSGC_BENCH_OUT="$MC_OUT" "$BUILD_DIR/tools/vsgc_mc" \
  --clients 3 --servers 1 --max-deviations 1 --out "$MC_OUT"
"$BUILD_DIR/tools/validate_bench_json" "$MC_OUT"/BENCH_mc.json

echo "== model checker self-check (planted bug) =="
# The explorer must find the planted duplicate-delivery bug, minimize the
# schedule, and the minimized ScheduleScript must replay byte-identically.
MC_PLANT="$BUILD_DIR/mc-selfcheck"
rm -rf "$MC_PLANT"
mkdir -p "$MC_PLANT"
VSGC_BENCH_OUT="$MC_PLANT" "$BUILD_DIR/tools/vsgc_mc" --inject-bug \
  --max-deviations 1 --expect-violation --out "$MC_PLANT" > /dev/null
"$BUILD_DIR/tools/vsgc_mc" --replay "$MC_PLANT/seed1" --expect-violation \
  > /dev/null
echo "planted schedule bug found, minimized, and replayed byte-identically"

echo "CI OK"
