#!/usr/bin/env bash
# CI entry point: sanitized debug build, full test suite, then one bench run
# whose BENCH_*.json artifact is schema-checked. Mirrors what a reviewer
# should run before merging.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (Debug + ASan/UBSan) =="
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== bench smoke + artifact validation =="
ARTIFACT_DIR="$BUILD_DIR/artifacts"
mkdir -p "$ARTIFACT_DIR"
VSGC_BENCH_OUT="$ARTIFACT_DIR" "$BUILD_DIR/bench/bench_view_change"
"$BUILD_DIR/tools/validate_bench_json" "$ARTIFACT_DIR"/BENCH_*.json

echo "== trace determinism =="
# Same binary, same seed: the JSONL trace must be byte-identical.
ARTIFACT_DIR2="$BUILD_DIR/artifacts2"
mkdir -p "$ARTIFACT_DIR2"
VSGC_BENCH_OUT="$ARTIFACT_DIR2" "$BUILD_DIR/bench/bench_view_change" > /dev/null
cmp "$ARTIFACT_DIR/TRACE_view_change.jsonl" "$ARTIFACT_DIR2/TRACE_view_change.jsonl"
echo "TRACE_view_change.jsonl byte-identical across runs"

echo "CI OK"
