#!/usr/bin/env bash
# CI entry point: sanitized debug build, full test suite, then one bench run
# whose BENCH_*.json artifact is schema-checked. Mirrors what a reviewer
# should run before merging.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (Debug + ASan/UBSan + VSGC_WERROR=ON) =="
# VSGC_WERROR=ON makes the build stage below a -Werror gate on the whole tree.
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DVSGC_WERROR=ON \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

echo "== static analysis =="
# Runs BEFORE the full build so determinism/hygiene violations are reported
# even when the tree itself would fail to compile. Only the linter and the
# artifact validator are built here.
cmake --build "$BUILD_DIR" -j "$JOBS" --target vsgc_lint_tool validate_bench_json
ARTIFACT_DIR="$BUILD_DIR/artifacts"
mkdir -p "$ARTIFACT_DIR"
# One pass emits both artifacts: the findings report (LINT_vsgc.json) and the
# include-graph/sim-purity summary (LINT_deps.json + Graphviz module diagram).
# The tree must be finding-free, which also enforces the sim-purity ratchet:
# an unledgered sim dependency (growth) or a ledger line whose dependency is
# gone (staleness) is an unsuppressed finding and fails this gate.
"$BUILD_DIR/tools/vsgc_lint" --root . --json "$ARTIFACT_DIR/LINT_vsgc.json" \
  --deps-json "$ARTIFACT_DIR/LINT_deps.json" \
  --dot "$ARTIFACT_DIR/modules.dot"
"$BUILD_DIR/tools/validate_bench_json" "$ARTIFACT_DIR/LINT_vsgc.json"
"$BUILD_DIR/tools/validate_bench_json" "$ARTIFACT_DIR/LINT_deps.json"

echo "== static analysis: batch engine hygiene =="
# The thread-pool is the one threaded component in src/; it must pass the
# determinism lint on its own (no wall-clock reads, no ambient randomness).
"$BUILD_DIR/tools/vsgc_lint" --root src/sim

echo "== static analysis self-check (planted violation) =="
# A deliberately planted determinism violation must fail the lint gate —
# mirrors the planted-bug self-checks of vsgc_stress and vsgc_mc.
LINT_PLANT="$BUILD_DIR/lint-selfcheck"
rm -rf "$LINT_PLANT"
mkdir -p "$LINT_PLANT/src/sim"
printf 'int planted() { return std::rand(); }\n' \
  > "$LINT_PLANT/src/sim/planted.cpp"
if "$BUILD_DIR/tools/vsgc_lint" --root "$LINT_PLANT" > /dev/null; then
  echo "vsgc_lint failed to flag a planted std::rand violation" >&2
  exit 1
fi
echo "planted violation caught by vsgc_lint"

echo "== static analysis self-check (architecture passes) =="
# One scratch tree plants a violation per architecture-conformance rule
# family; the linter must flag every family and exit non-zero. The stale
# ledger entry also proves the ratchet's shrink direction is enforced, not
# just its growth direction.
ARCH_PLANT="$BUILD_DIR/lint-selfcheck-arch"
rm -rf "$ARCH_PLANT"
mkdir -p "$ARCH_PLANT/src/transport" "$ARCH_PLANT/src/gcs" \
  "$ARCH_PLANT/src/util" "$ARCH_PLANT/tools"
# layer-violation: transport (rank 30) reaching up into gcs (rank 50).
printf '#pragma once\n#include "gcs/view.hpp"\n' \
  > "$ARCH_PLANT/src/transport/up.hpp"
printf '#pragma once\n' > "$ARCH_PLANT/src/gcs/view.hpp"
# include-cycle: two util headers including each other.
printf '#pragma once\n#include "util/b.hpp"\n' > "$ARCH_PLANT/src/util/a.hpp"
printf '#pragma once\n#include "util/a.hpp"\n' > "$ARCH_PLANT/src/util/b.hpp"
# sim-purity (growth): protocol header pulls in the event kernel unledgered.
printf '#pragma once\n#include "sim/simulator.hpp"\n' \
  > "$ARCH_PLANT/src/gcs/simdep.hpp"
# sim-purity (staleness): ledger line whose dependency does not exist.
printf 'src/gcs/gone.hpp symbol Simulator\n' \
  > "$ARCH_PLANT/tools/sim_purity_ledger.txt"
# codec-symmetry: decoder reads fields in the reverse of the encoded order.
printf '%s\n' '#pragma once' 'struct Ping {' '  unsigned a = 0;' \
  '  unsigned b = 0;' \
  '  void encode(Encoder& enc) const { enc.put_u32(a); enc.put_u32(b); }' \
  '  static Ping decode(Decoder& dec) {' '    Ping p;' \
  '    p.b = dec.get_u32();' '    p.a = dec.get_u32();' '    return p;' \
  '  }' '};' > "$ARCH_PLANT/src/gcs/messages.hpp"
ARCH_OUT="$BUILD_DIR/lint-selfcheck-arch.out"
if "$BUILD_DIR/tools/vsgc_lint" --root "$ARCH_PLANT" > "$ARCH_OUT"; then
  echo "vsgc_lint failed to flag the planted architecture violations" >&2
  cat "$ARCH_OUT" >&2
  exit 1
fi
for rule in layer-violation include-cycle sim-purity codec-symmetry; do
  if ! grep -q "\[$rule\]" "$ARCH_OUT"; then
    echo "vsgc_lint missed the planted $rule violation:" >&2
    cat "$ARCH_OUT" >&2
    exit 1
  fi
done
if ! grep -q "stale ledger entry" "$ARCH_OUT"; then
  echo "vsgc_lint missed the planted stale sim-purity ledger entry" >&2
  cat "$ARCH_OUT" >&2
  exit 1
fi
echo "planted layer/cycle/sim-purity/codec violations all caught"

# clang-tidy half of the gate; skips with a notice when not installed.
tools/run_clang_tidy.sh "$BUILD_DIR"

echo "== build (with -Werror) =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test: unit =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L unit

echo "== test: property =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L property

echo "== test: mc =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L mc

echo "== bench smoke + artifact validation =="
ARTIFACT_DIR="$BUILD_DIR/artifacts"
mkdir -p "$ARTIFACT_DIR"
VSGC_BENCH_OUT="$ARTIFACT_DIR" "$BUILD_DIR/bench/bench_view_change"
"$BUILD_DIR/tools/validate_bench_json" "$ARTIFACT_DIR"/BENCH_*.json

echo "== trace determinism =="
# Same binary, same seed: the JSONL trace must be byte-identical.
ARTIFACT_DIR2="$BUILD_DIR/artifacts2"
mkdir -p "$ARTIFACT_DIR2"
VSGC_BENCH_OUT="$ARTIFACT_DIR2" "$BUILD_DIR/bench/bench_view_change" > /dev/null
cmp "$ARTIFACT_DIR/TRACE_view_change.jsonl" "$ARTIFACT_DIR2/TRACE_view_change.jsonl"
echo "TRACE_view_change.jsonl byte-identical across runs"

echo "== causal trace analysis (vsgc_trace) =="
# Fault-free seeded stress through the span analyzer: every expected
# delivery must be accounted for (zero orphans), the report and the
# BENCH_tracelat.json artifact must be schema-valid, and the report must be
# byte-identical across two same-seed replays.
TRACE_OUT="$BUILD_DIR/trace-out"
rm -rf "$TRACE_OUT"
mkdir -p "$TRACE_OUT"
"$BUILD_DIR/tools/vsgc_trace" --record --seed 7 --clients 5 --servers 2 \
  --messages 40 --check-no-orphans --report "$TRACE_OUT/report1.txt" \
  --json "$TRACE_OUT"
"$BUILD_DIR/tools/vsgc_trace" --record --seed 7 --clients 5 --servers 2 \
  --messages 40 --check-no-orphans --report "$TRACE_OUT/report2.txt"
cmp "$TRACE_OUT/report1.txt" "$TRACE_OUT/report2.txt"
"$BUILD_DIR/tools/validate_bench_json" "$TRACE_OUT/BENCH_tracelat.json"
echo "vsgc_trace: zero orphans fault-free, report byte-identical across runs"
# Churn run: losses under injected faults must all be attributable (crash,
# exclusion by the cut, in-flight at trace end) — never "unexplained".
"$BUILD_DIR/tools/vsgc_trace" --record --seed 11 --churn --check-clean \
  --report "$TRACE_OUT/churn.txt"
echo "vsgc_trace: churn losses fully attributed (no unexplained orphans)"

echo "== stress fuzz smoke (sanitized) =="
# Fixed seed block, small world, full checker suite: any violation fails CI
# and the repro bundle path is printed by the tool itself.
STRESS_OUT="$BUILD_DIR/stress-out"
rm -rf "$STRESS_OUT"
if ! "$BUILD_DIR/tools/vsgc_stress" --seeds 0:24 --clients 4 --servers 2 \
    --steps 15 --out "$STRESS_OUT"; then
  echo "vsgc_stress found a violation; repro bundles under $STRESS_OUT" >&2
  exit 1
fi

echo "== stress pipeline self-check (planted bug) =="
# A deliberately injected endpoint bug must be caught by the checkers,
# minimized, and the minimized bundle must replay to the same violation.
PLANT_OUT="$BUILD_DIR/stress-selfcheck"
rm -rf "$PLANT_OUT"
"$BUILD_DIR/tools/vsgc_stress" --seeds 3:3 --inject-bug 10 \
  --expect-violation --out "$PLANT_OUT" > /dev/null
"$BUILD_DIR/tools/vsgc_stress" --replay "$PLANT_OUT/seed3" --expect-violation \
  > /dev/null
echo "planted bug caught, minimized, and replayed"

echo "== corruption stress sweep (eventual-safety suite) =="
# State-corruption fault family (DESIGN.md §12): 200 seeds of corruption-heavy
# churn judged by the eventual-safety checker bundle. Recoverable corruption
# may violate safety only inside the post-injection tolerance window; any
# post-window violation or failed reconvergence fails the sweep.
CORRUPT_OUT="$BUILD_DIR/corrupt-out"
rm -rf "$CORRUPT_OUT"
if ! "$BUILD_DIR/tools/vsgc_stress" --corrupt --seeds 0:199 --clients 4 \
    --servers 2 --steps 15 --jobs "$JOBS" --out "$CORRUPT_OUT" > /dev/null; then
  echo "corruption sweep violation; repro bundles under $CORRUPT_OUT" >&2
  exit 1
fi
echo "200-seed corruption sweep clean (zero post-window violations)"

echo "== corruption pipeline self-check (planted wedge) =="
# The unrecoverable planted corruption (the endpoint view-epoch wedge) must
# be flagged by the stabilize epilogue even under the eventual bundle,
# minimized to the single injection, and the minimized bundle must replay to
# the same violation under the same tolerance window.
CORRUPT_PLANT="$BUILD_DIR/corrupt-selfcheck"
rm -rf "$CORRUPT_PLANT"
"$BUILD_DIR/tools/vsgc_stress" --corrupt --seeds 3:3 --inject-bug 10 \
  --expect-violation --out "$CORRUPT_PLANT" > /dev/null
"$BUILD_DIR/tools/vsgc_stress" --replay "$CORRUPT_PLANT/seed3" \
  --expect-violation > /dev/null
echo "planted corruption wedge caught, minimized, and replayed"

echo "== parallel sweep: jobs-independence (stress) =="
# The work-stealing seed sweep must be an invisible optimization: stdout (the
# deterministic per-seed verdict stream + summary) must be byte-identical
# between --jobs 1 and a parallel run. Throughput lines go to stderr and are
# deliberately excluded from the contract.
SWEEP_J1="$BUILD_DIR/sweep-jobs1"
SWEEP_JN="$BUILD_DIR/sweep-jobsN"
rm -rf "$SWEEP_J1" "$SWEEP_JN"
VSGC_BENCH_OUT="$SWEEP_J1" "$BUILD_DIR/tools/vsgc_stress" --seeds 0:11 \
  --clients 4 --servers 2 --steps 12 --jobs 1 --out "$SWEEP_J1" \
  2>/dev/null > "$BUILD_DIR/sweep-jobs1.txt"
VSGC_BENCH_OUT="$SWEEP_JN" "$BUILD_DIR/tools/vsgc_stress" --seeds 0:11 \
  --clients 4 --servers 2 --steps 12 --jobs 4 --out "$SWEEP_JN" \
  2>/dev/null > "$BUILD_DIR/sweep-jobsN.txt"
cmp "$BUILD_DIR/sweep-jobs1.txt" "$BUILD_DIR/sweep-jobsN.txt"
echo "vsgc_stress stdout byte-identical at --jobs 1 and --jobs 4"

echo "== model checker: exhaustive exploration + artifact =="
# Bounded exploration of the 3-process view-change scenario must exhaust the
# frontier within the deviation bound and emit a schema-valid BENCH_mc.json.
MC_OUT="$BUILD_DIR/mc-out"
rm -rf "$MC_OUT"
mkdir -p "$MC_OUT"
VSGC_BENCH_OUT="$MC_OUT" "$BUILD_DIR/tools/vsgc_mc" \
  --clients 3 --servers 1 --max-deviations 1 --out "$MC_OUT"
"$BUILD_DIR/tools/validate_bench_json" "$MC_OUT"/BENCH_mc.json

echo "== model checker self-check (planted bug) =="
# The explorer must find the planted duplicate-delivery bug, minimize the
# schedule, and the minimized ScheduleScript must replay byte-identically.
MC_PLANT="$BUILD_DIR/mc-selfcheck"
rm -rf "$MC_PLANT"
mkdir -p "$MC_PLANT"
VSGC_BENCH_OUT="$MC_PLANT" "$BUILD_DIR/tools/vsgc_mc" --inject-bug \
  --max-deviations 1 --expect-violation --out "$MC_PLANT" > /dev/null
"$BUILD_DIR/tools/vsgc_mc" --replay "$MC_PLANT/seed1" --expect-violation \
  > /dev/null
echo "planted schedule bug found, minimized, and replayed byte-identically"

echo "== model checker corruption self-check (planted wedge) =="
# With --corrupt the fault menu gains the corruption family and the planted
# action becomes the unrecoverable view-epoch wedge: exploration must find
# it, the minimizer must shrink the schedule to that single injection, and
# the bundle (scenario.json round-trips the corruption flag, so the replay
# is judged under the same eventual-safety window) must replay identically.
MC_CORRUPT="$BUILD_DIR/mc-corrupt-selfcheck"
rm -rf "$MC_CORRUPT"
mkdir -p "$MC_CORRUPT"
VSGC_BENCH_OUT="$MC_CORRUPT" "$BUILD_DIR/tools/vsgc_mc" --corrupt \
  --inject-bug --max-deviations 1 --expect-violation --out "$MC_CORRUPT" \
  > /dev/null
"$BUILD_DIR/tools/vsgc_mc" --replay "$MC_CORRUPT/seed1" --expect-violation \
  > /dev/null
echo "corruption wedge found by exploration, minimized, and replayed"

echo "== parallel exploration: jobs-independence (mc) =="
# Same contract for the model checker: parallel chunked exploration must
# report the identical run/dedup/depth breakdown and verdict as --jobs 1.
# The artifact path line is the only stdout that names the output dir.
MC_J1="$BUILD_DIR/mc-jobs1"
MC_JN="$BUILD_DIR/mc-jobsN"
rm -rf "$MC_J1" "$MC_JN"
mkdir -p "$MC_J1" "$MC_JN"
VSGC_BENCH_OUT="$MC_J1" "$BUILD_DIR/tools/vsgc_mc" --clients 3 --servers 1 \
  --max-deviations 1 --jobs 1 --out "$MC_J1" 2>/dev/null \
  | grep -Ev '^(artifact:|\[artifact\])' > "$BUILD_DIR/mc-jobs1.txt"
VSGC_BENCH_OUT="$MC_JN" "$BUILD_DIR/tools/vsgc_mc" --clients 3 --servers 1 \
  --max-deviations 1 --jobs 4 --out "$MC_JN" 2>/dev/null \
  | grep -Ev '^(artifact:|\[artifact\])' > "$BUILD_DIR/mc-jobsN.txt"
cmp "$BUILD_DIR/mc-jobs1.txt" "$BUILD_DIR/mc-jobsN.txt"
echo "vsgc_mc stdout byte-identical at --jobs 1 and --jobs 4"

echo "== perf bench (Release, wall-clock gates) =="
# Optimized builds only: the kernel fast-path and parallel sweep are gated on
# measured wall-clock speedups, and the emitted BENCH_simperf.json must pass
# the extended simperf schema. The kernel gate (>= 3x vs the embedded legacy
# priority-queue kernel) holds on any machine; the sweep gate needs real
# parallel hardware, so it scales with core count and is skipped below 4
# cores (a 1-core runner can only ever see ~1x).
BUILD_DIR_REL="${BUILD_DIR_REL:-build-ci-rel}"
cmake -B "$BUILD_DIR_REL" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD_DIR_REL" -j "$JOBS" \
  --target bench_simperf validate_bench_json
PERF_OUT="$BUILD_DIR_REL/artifacts"
mkdir -p "$PERF_OUT"
SIMPERF_ARGS=(--check-kernel-speedup 3.0)
if [ "$JOBS" -ge 4 ]; then
  SWEEP_GATE=$((JOBS / 2))
  if [ "$SWEEP_GATE" -gt 4 ]; then SWEEP_GATE=4; fi
  SIMPERF_ARGS+=(--check-sweep-speedup "$SWEEP_GATE")
else
  echo "(sweep speedup gate skipped: only $JOBS hardware thread(s))"
fi
VSGC_BENCH_OUT="$PERF_OUT" "$BUILD_DIR_REL/bench/bench_simperf" \
  "${SIMPERF_ARGS[@]}"
"$BUILD_DIR_REL/tools/validate_bench_json" "$PERF_OUT/BENCH_simperf.json"

echo "== perf bench: batched data plane (Release, wall-clock gate) =="
# The fan-in case must show the batching + piggybacked/delayed-ack data plane
# (DESIGN.md §11) delivering >= 3x wall-clock msgs/sec over the unbatched
# one-frame-per-message plane, and the artifact must carry the byte-overhead
# columns the extended throughput schema requires.
cmake --build "$BUILD_DIR_REL" -j "$JOBS" --target bench_throughput
VSGC_BENCH_OUT="$PERF_OUT" "$BUILD_DIR_REL/bench/bench_throughput" \
  --check-batching-speedup 3.0
"$BUILD_DIR_REL/tools/validate_bench_json" "$PERF_OUT/BENCH_throughput.json"

echo "== perf bench: scale sweep (Release, sublinear gate) =="
# E12: the N-sweep (64/256/1024 clients, ~N/8 groups, Zipf traffic, flash
# crowds, failure waves) must show view-change latency and per-member
# resident bytes growing sublinearly (log-log fit exponent < 1.15), and the
# same-seed determinism double-run inside the bench must be byte-identical.
cmake --build "$BUILD_DIR_REL" -j "$JOBS" --target bench_scale
VSGC_BENCH_OUT="$PERF_OUT" "$BUILD_DIR_REL/bench/bench_scale" \
  --check-sublinear
"$BUILD_DIR_REL/tools/validate_bench_json" "$PERF_OUT/BENCH_scale.json"

echo "== thread sanitizer (batch engine) =="
# TSan and ASan cannot share a build; a dedicated tree covers the only
# threaded component (sim::BatchRunner) plus a parallel stress sweep that
# drives it end to end.
BUILD_DIR_TSAN="${BUILD_DIR_TSAN:-build-ci-tsan}"
cmake -B "$BUILD_DIR_TSAN" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" > /dev/null
cmake --build "$BUILD_DIR_TSAN" -j "$JOBS" --target batch_test vsgc_stress
"$BUILD_DIR_TSAN/tests/batch_test" > /dev/null
TSAN_OUT="$BUILD_DIR_TSAN/stress-out"
rm -rf "$TSAN_OUT"
mkdir -p "$TSAN_OUT"
VSGC_BENCH_OUT="$TSAN_OUT" "$BUILD_DIR_TSAN/tools/vsgc_stress" --seeds 0:3 \
  --clients 3 --servers 1 --steps 8 --jobs 4 --out "$TSAN_OUT" > /dev/null
echo "TSan clean on batch_test and a parallel stress sweep"

echo "CI OK"
